// Unit tests for the observability layer: metrics registry, log-bucket
// histograms, tracer enable/disable semantics, ring-buffer behaviour, and
// exporter round-trips (Chrome trace JSON and JSONL back through the
// trace reader).

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_reader.hpp"
#include "obs/tracer.hpp"
#include "sim/time.hpp"

namespace zhuge::obs {
namespace {

using sim::Duration;
using sim::TimePoint;

/// Guard restoring global obs state so tests cannot leak into each other.
class ObsStateGuard {
 public:
  ObsStateGuard() { reset_all(); }
  ~ObsStateGuard() { reset_all(); }

 private:
  static void reset_all() {
    set_metrics_enabled(false);
    set_tracing_enabled(false);
    reset();
  }
};

TEST(Registry, CountersGaugesHistogramsByName) {
  Registry reg;
  reg.counter("a.events").inc();
  reg.counter("a.events").inc(4);
  EXPECT_EQ(reg.counter("a.events").value(), 5u);

  reg.gauge("a.depth").set(7.5);
  reg.gauge("a.depth").add(0.5);
  EXPECT_DOUBLE_EQ(reg.gauge("a.depth").value(), 8.0);

  reg.histogram("a.delay_us").observe(10.0);
  reg.histogram("a.delay_us").observe(20.0);
  EXPECT_EQ(reg.histogram("a.delay_us").count(), 2u);
  EXPECT_DOUBLE_EQ(reg.histogram("a.delay_us").sum(), 30.0);

  // Distinct names are distinct metrics; repeated lookups hit the same one.
  EXPECT_EQ(reg.counter("b.events").value(), 0u);
  EXPECT_EQ(reg.counters().size(), 2u);
  reg.clear();
  EXPECT_TRUE(reg.counters().empty());
  EXPECT_TRUE(reg.histograms().empty());
}

TEST(Histogram, BucketIndexCoversRangeWithUnderAndOverflow) {
  const HistogramSpec spec{.lo = 1.0, .hi = 1000.0, .buckets_per_decade = 1};
  Histogram h(spec);
  // 3 decades, 1 bucket each, plus underflow [0] and overflow [4].
  EXPECT_EQ(h.bucket_count(), 5u);
  EXPECT_EQ(h.bucket_index(0.5), 0u);            // underflow
  EXPECT_EQ(h.bucket_index(-3.0), 0u);           // negative -> underflow
  EXPECT_EQ(h.bucket_index(std::nan("")), 0u);   // NaN -> underflow
  EXPECT_EQ(h.bucket_index(1.0), 1u);
  EXPECT_EQ(h.bucket_index(9.9), 1u);
  EXPECT_EQ(h.bucket_index(10.0), 2u);
  EXPECT_EQ(h.bucket_index(999.0), 3u);
  EXPECT_EQ(h.bucket_index(1000.0), 4u);         // overflow
  EXPECT_EQ(h.bucket_index(1e12), 4u);

  // Bucket edges are the decade boundaries.
  EXPECT_DOUBLE_EQ(h.bucket_lower(1), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_upper(1), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_lower(4), 1000.0);
  EXPECT_TRUE(std::isinf(h.bucket_upper(4)));
}

TEST(Histogram, CountSumMinMaxExact) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  for (double v : {5.0, 1.0, 9.0}) h.observe(v);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 15.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 9.0);
}

TEST(Histogram, QuantilesClampToObservedRangeAndOrder) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(h.quantile(0.0), p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.quantile(1.0));
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(h.quantile(1.0), 1000.0);
  // Log-bucket interpolation: p50 within a bucket width of the truth.
  EXPECT_NEAR(p50, 500.0, 500.0 * 0.6);
  EXPECT_NEAR(p99, 990.0, 990.0 * 0.6);
}

TEST(Tracer, DisabledMacroRecordsNothing) {
  ObsStateGuard guard;
  EXPECT_FALSE(tracing_enabled());
  ZHUGE_TRACE(TimePoint::zero(), "test", "ev", {"x", 1.0});
  EXPECT_EQ(tracer().size(), 0u);
  EXPECT_EQ(tracer().recorded(), 0u);

  set_tracing_enabled(true);
  ZHUGE_TRACE(TimePoint::zero() + Duration::millis(2), "test", "ev", {"x", 1.0});
  EXPECT_EQ(tracer().size(), 1u);
  const TraceEvent& e = tracer().at(0);
  EXPECT_EQ(e.t_ns, 2'000'000);
  EXPECT_STREQ(e.component, "test");
  EXPECT_STREQ(e.name, "ev");
  ASSERT_EQ(e.n_fields, 1);
  EXPECT_STREQ(e.fields[0].key, "x");
  EXPECT_DOUBLE_EQ(e.fields[0].value, 1.0);

  set_tracing_enabled(false);
  ZHUGE_TRACE(TimePoint::zero(), "test", "ev2");
  EXPECT_EQ(tracer().size(), 1u);
}

TEST(Tracer, MetricsMacrosHonourRuntimeSwitch) {
  ObsStateGuard guard;
  ZHUGE_METRIC_INC("test.count");
  ZHUGE_METRIC_OBSERVE("test.hist", 5.0);
  EXPECT_TRUE(metrics().counters().empty());
  EXPECT_TRUE(metrics().histograms().empty());

  set_metrics_enabled(true);
  ZHUGE_METRIC_INC("test.count");
  ZHUGE_METRIC_ADD("test.count", 2);
  ZHUGE_METRIC_SET("test.gauge", 3.5);
  ZHUGE_METRIC_OBSERVE("test.hist", 5.0);
  EXPECT_EQ(metrics().counter("test.count").value(), 3u);
  EXPECT_DOUBLE_EQ(metrics().gauge("test.gauge").value(), 3.5);
  EXPECT_EQ(metrics().histogram("test.hist").count(), 1u);
}

TEST(Tracer, RingOverwritesOldestBeyondCapacity) {
  Tracer t(4);
  for (int i = 0; i < 10; ++i) {
    t.record(TimePoint::zero() + Duration::millis(i), "c", "e",
             {{"i", static_cast<double>(i)}});
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.overwritten(), 6u);
  // Chronological order, most recent window retained.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(t.at(i).fields[0].value, static_cast<double>(6 + i));
  }
}

TEST(Tracer, FieldsBeyondMaxAreDropped) {
  Tracer t;
  t.record(TimePoint::zero(), "c", "e",
           {{"f0", 0}, {"f1", 1}, {"f2", 2}, {"f3", 3}, {"f4", 4},
            {"f5", 5}, {"f6", 6}, {"f7", 7}, {"f8", 8}, {"f9", 9}});
  EXPECT_EQ(t.at(0).n_fields, TraceEvent::kMaxFields);
}

TEST(Export, ChromeTraceRoundTrip) {
  Tracer t;
  t.record(TimePoint::zero() + Duration::millis(1), "fortune", "predict",
           {{"qLong_ms", 12.5}, {"qShort_ms", 0.25}, {"tx_ms", 2.0}});
  t.record(TimePoint::zero() + Duration::millis(3), "queue.fifo", "dequeue",
           {{"sojourn_us", 1500.0}});
  t.record(TimePoint::zero() + Duration::millis(4), "app", "note", {});

  std::stringstream ss;
  write_chrome_trace(t, ss);
  const auto events = load_trace(ss);
  ASSERT_EQ(events.size(), 3u);

  EXPECT_DOUBLE_EQ(events[0].t_us, 1000.0);
  EXPECT_EQ(events[0].component, "fortune");
  EXPECT_EQ(events[0].name, "predict");
  ASSERT_EQ(events[0].fields.size(), 3u);
  EXPECT_EQ(events[0].fields[0].first, "qLong_ms");
  EXPECT_DOUBLE_EQ(events[0].fields[0].second, 12.5);
  EXPECT_EQ(events[0].fields[1].first, "qShort_ms");
  EXPECT_DOUBLE_EQ(events[0].fields[1].second, 0.25);

  EXPECT_EQ(events[1].component, "queue.fifo");
  EXPECT_DOUBLE_EQ(events[1].fields[0].second, 1500.0);
  EXPECT_EQ(events[2].name, "note");
  EXPECT_TRUE(events[2].fields.empty());
}

TEST(Export, JsonlRoundTrip) {
  Tracer t;
  t.record(TimePoint::zero() + Duration::micros(7), "wireless.wifi", "tx_start",
           {{"mpdus", 4.0}, {"rate_mbps", 86.7}});

  std::stringstream ss;
  write_trace_jsonl(t, ss);
  const auto events = load_trace(ss);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].t_us, 7.0);
  EXPECT_EQ(events[0].component, "wireless.wifi");
  EXPECT_EQ(events[0].name, "tx_start");
  ASSERT_EQ(events[0].fields.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].fields[1].second, 86.7);
}

TEST(Export, CsvHasOneRowPerField) {
  Tracer t;
  t.record(TimePoint::zero(), "c", "e", {{"a", 1.0}, {"b", 2.0}});
  t.record(TimePoint::zero(), "c", "bare", {});
  std::stringstream ss;
  write_trace_csv(t, ss);
  std::string line;
  int rows = 0;
  while (std::getline(ss, line)) ++rows;
  EXPECT_EQ(rows, 4);  // header + 2 field rows + 1 bare row
}

TEST(Export, MetricsJsonContainsAllSections) {
  Registry reg;
  reg.counter("c.events").inc(3);
  reg.gauge("g.depth").set(1.5);
  reg.histogram("h.delay").observe(10.0);
  std::stringstream ss;
  write_metrics_json(reg, ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("\"c.events\": 3"), std::string::npos);
  EXPECT_NE(out.find("\"g.depth\": 1.5"), std::string::npos);
  EXPECT_NE(out.find("\"h.delay\""), std::string::npos);
  EXPECT_NE(out.find("\"p99\""), std::string::npos);
}

TEST(Export, EscapesAndNonFiniteValues) {
  Tracer t;
  t.record(TimePoint::zero(), "c\"x", "e\\y",
           {{"nan", std::nan("")}, {"inf", HUGE_VAL}});
  std::stringstream ss;
  write_chrome_trace(t, ss);
  const auto events = load_trace(ss);  // must still parse
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].component, "c\"x");
  EXPECT_EQ(events[0].name, "e\\y");
}

TEST(Reader, RejectsMalformedInput) {
  std::stringstream ss("{\"traceEvents\": [ {\"ph\": ");
  EXPECT_THROW((void)load_trace(ss), std::runtime_error);
  EXPECT_THROW((void)load_trace_file("/nonexistent/trace.json"),
               std::runtime_error);
}

/// What load_trace says about `text`; empty when it parses fine.
std::string reader_error(const std::string& text) {
  std::stringstream ss(text);
  try {
    (void)load_trace(ss);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return {};
}

TEST(Reader, TruncatedDocumentErrorShowsOffsetAndEnd) {
  const std::string msg = reader_error("{\"traceEvents\": [ {\"ph\": ");
  EXPECT_NE(msg.find("offset"), std::string::npos) << msg;
  EXPECT_NE(msg.find("at end of input"), std::string::npos) << msg;
}

TEST(Reader, GarbageTokenErrorShowsSnippet) {
  const std::string msg = reader_error("{\"ts\": @@garbage@@}");
  EXPECT_NE(msg.find("near \""), std::string::npos) << msg;
  EXPECT_NE(msg.find("@@garbage@@"), std::string::npos) << msg;
}

TEST(Reader, BadJsonlLineErrorNamesTheLine) {
  const std::string msg = reader_error(
      "{\"t_us\": 1, \"name\": \"a\"}\nnot json at all\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
}

TEST(Reader, ControlCharactersSanitizedInSnippet) {
  const std::string msg = reader_error(std::string("{\"ts\": \x01\x02oops}"));
  EXPECT_FALSE(msg.empty());
  for (char c : msg) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(Reader, FileErrorsArePrefixedWithPath) {
  const std::string path = "/tmp/zhuge_obs_bad_trace.json";
  {
    std::ofstream out(path);
    out << "{\"traceEvents\": [ {\"ph\": ";
  }
  std::string msg;
  try {
    (void)load_trace_file(path);
  } catch (const std::runtime_error& e) {
    msg = e.what();
  }
  std::filesystem::remove(path);
  EXPECT_EQ(msg.rfind(path + ": ", 0), 0u) << msg;
}

}  // namespace
}  // namespace zhuge::obs
