// Tests for the parallel sweep runner: serial vs multi-thread
// bit-identity of per-run results (the PR 3 acceptance criterion), grid
// construction, fingerprint sensitivity, and metric aggregation.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "app/sweep.hpp"
#include "obs/metrics.hpp"
#include "trace/synthetic.hpp"

namespace zhuge::app {
namespace {

using sim::Duration;
using namespace sim::literals;

/// 4 scenarios x 4 seeds = the 16-point grid from the acceptance
/// criterion. Duration comfortably exceeds the warmup so post-warmup
/// distributions are populated and fingerprints reflect real traffic.
std::vector<SweepPoint> sixteen_point_grid(const trace::Trace& tr) {
  std::vector<SweepPoint> scenarios;
  const auto add = [&](std::string name, ApMode mode, Protocol proto) {
    SweepPoint p;
    p.name = std::move(name);
    p.config.protocol = proto;
    p.config.ap.mode = mode;
    p.config.channel_trace = &tr;
    p.config.duration = 8_s;
    p.config.warmup = 2_s;
    scenarios.push_back(std::move(p));
  };
  add("rtp-none", ApMode::kNone, Protocol::kRtp);
  add("rtp-zhuge", ApMode::kZhuge, Protocol::kRtp);
  add("rtp-fastack", ApMode::kFastAck, Protocol::kRtp);
  add("tcp-zhuge", ApMode::kZhuge, Protocol::kTcp);
  return cross_seeds(scenarios, {1, 2, 3, 4});
}

TEST(Sweep, CrossSeedsBuildsNamedGrid) {
  std::vector<SweepPoint> scenarios(2);
  scenarios[0].name = "a";
  scenarios[1].name = "b";
  const auto grid = cross_seeds(scenarios, {7, 9});
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid[0].name, "a/s7");
  EXPECT_EQ(grid[0].seed, 7u);
  EXPECT_EQ(grid[1].name, "a/s9");
  EXPECT_EQ(grid[2].name, "b/s7");
  EXPECT_EQ(grid[3].name, "b/s9");
  EXPECT_EQ(grid[3].seed, 9u);
}

TEST(Sweep, EightThreadsBitIdenticalToSerial) {
  // The acceptance criterion: every per-run fingerprint from an 8-thread
  // sweep of the 16-point grid must equal the serial run's, bit for bit.
  const trace::Trace tr =
      trace::make_trace(trace::TraceKind::kRestaurantWifi, 7, 8_s);
  const auto grid = sixteen_point_grid(tr);
  ASSERT_EQ(grid.size(), 16u);

  const auto serial = run_sweep(grid, {.threads = 1});
  const auto parallel = run_sweep(grid, {.threads = 8});
  ASSERT_EQ(serial.size(), 16u);
  ASSERT_EQ(parallel.size(), 16u);

  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(parallel[i].name, serial[i].name);
    EXPECT_EQ(parallel[i].fingerprint, serial[i].fingerprint)
        << grid[i].name << ": parallel run diverged from serial";
    // Fingerprints compare hashed state; spot-check raw fields too so a
    // fingerprint bug cannot mask a real divergence.
    EXPECT_EQ(parallel[i].result.events_executed,
              serial[i].result.events_executed);
    EXPECT_EQ(parallel[i].result.primary().goodput_bps,
              serial[i].result.primary().goodput_bps);
    EXPECT_EQ(parallel[i].result.primary().frames_decoded,
              serial[i].result.primary().frames_decoded);
  }

  // Sanity: the grid is not degenerate — seeds and scenarios genuinely
  // change the outcome (FastAck matches None on RTP by design: it only
  // touches TCP ACK handling).
  std::set<std::uint64_t> distinct;
  for (const auto& run : serial) distinct.insert(run.fingerprint);
  EXPECT_GE(distinct.size(), 12u);
}

TEST(Sweep, RepeatedRunsAreReproducible) {
  const trace::Trace tr =
      trace::make_trace(trace::TraceKind::kRestaurantWifi, 3, 6_s);
  std::vector<SweepPoint> scenarios(1);
  scenarios[0].name = "rtp-zhuge";
  scenarios[0].config.ap.mode = ApMode::kZhuge;
  scenarios[0].config.channel_trace = &tr;
  scenarios[0].config.duration = 6_s;
  scenarios[0].config.warmup = 2_s;
  const auto grid = cross_seeds(scenarios, {1, 2});

  const auto first = run_sweep(grid, {.threads = 2});
  const auto second = run_sweep(grid, {.threads = 2});
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].fingerprint, second[i].fingerprint);
  }
  EXPECT_NE(first[0].fingerprint, first[1].fingerprint);  // seeds matter
}

TEST(Sweep, RunSweepRestoresObsSwitches) {
  const bool metrics_was = obs::metrics_enabled();
  const bool tracing_was = obs::tracing_enabled();
  const bool invariants_was = obs::invariants_enabled();

  const trace::Trace tr = trace::constant_trace(20e6, 1_s);
  std::vector<SweepPoint> scenarios(1);
  scenarios[0].name = "tiny";
  scenarios[0].config.channel_trace = &tr;
  scenarios[0].config.duration = 1_s;
  scenarios[0].config.warmup = Duration::zero();
  (void)run_sweep(cross_seeds(scenarios, {1}), {.threads = 2});

  EXPECT_EQ(obs::metrics_enabled(), metrics_was);
  EXPECT_EQ(obs::tracing_enabled(), tracing_was);
  EXPECT_EQ(obs::invariants_enabled(), invariants_was);
}

TEST(Sweep, ExportAggregatesPerRunMetrics) {
  const trace::Trace tr = trace::constant_trace(20e6, 6_s);
  std::vector<SweepPoint> scenarios(1);
  scenarios[0].name = "steady";
  scenarios[0].config.channel_trace = &tr;
  scenarios[0].config.duration = 6_s;
  scenarios[0].config.warmup = 2_s;
  const auto runs = run_sweep(cross_seeds(scenarios, {1, 2}), {.threads = 2});

  obs::Registry registry;
  export_sweep_metrics(runs, registry);
  EXPECT_EQ(registry.counter("sweep.total.runs").value(), 2u);
  EXPECT_GT(registry.counter("sweep.total.events").value(), 0u);
  EXPECT_GT(registry.gauge("sweep.steady/s1.goodput_bps").value(), 1e6);
  EXPECT_GT(registry.gauge("sweep.steady/s2.rtt_p50_ms").value(), 0.0);
  EXPECT_EQ(registry.counter("sweep.steady/s1.events").value(),
            runs[0].result.events_executed);
}

}  // namespace
}  // namespace zhuge::app
