#pragma once
// Tiny property-based testing harness over sim::Rng.
//
// for_all() runs a property against `iterations` randomized cases. Each
// case gets its own deterministically derived Rng — (base_seed + case
// index) on a dedicated stream — so a red case in CI replays locally from
// the printed iteration number alone, no shrinking machinery needed. The
// SCOPED_TRACE makes every gtest assertion inside the property report
// which case fired it.

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "sim/random.hpp"

namespace zhuge::prop {

struct Config {
  int iterations = 200;
  std::uint64_t base_seed = 0xBADC0DE;
  /// Rng stream for case derivation; distinct from every stream the
  /// simulation layers use, so a property can also *construct* simulators
  /// without colliding.
  std::uint64_t stream = 97;
};

/// Run `property(rng, case_index)` for cfg.iterations cases.
template <typename Property>
void for_all(const Config& cfg, Property&& property) {
  for (int i = 0; i < cfg.iterations; ++i) {
    SCOPED_TRACE(::testing::Message()
                 << "property case " << i << " (seed "
                 << cfg.base_seed + static_cast<std::uint64_t>(i)
                 << ", stream " << cfg.stream << ")");
    sim::Rng rng(cfg.base_seed + static_cast<std::uint64_t>(i), cfg.stream);
    property(rng, i);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

/// Default-config convenience overload.
template <typename Property>
void for_all(Property&& property) {
  for_all(Config{}, std::forward<Property>(property));
}

}  // namespace zhuge::prop
