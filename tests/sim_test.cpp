// Unit tests for the discrete-event engine: time arithmetic, event
// ordering, cancellation, and deterministic randomness.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace zhuge::sim {
namespace {

using namespace literals;

TEST(Time, DurationFactoriesAgree) {
  EXPECT_EQ(Duration::micros(1).count_ns(), 1000);
  EXPECT_EQ(Duration::millis(1).count_ns(), 1'000'000);
  EXPECT_EQ(Duration::seconds(1).count_ns(), 1'000'000'000);
  EXPECT_EQ(Duration::from_seconds(0.5), Duration::millis(500));
  EXPECT_EQ(Duration::from_millis(1.5), Duration::micros(1500));
  EXPECT_EQ(1_ms, Duration::millis(1));
  EXPECT_EQ(2_s, Duration::seconds(2));
  EXPECT_EQ(3_us, Duration::micros(3));
  EXPECT_EQ(7_ns, Duration::nanos(7));
}

TEST(Time, DurationArithmetic) {
  const Duration a = 10_ms;
  const Duration b = 4_ms;
  EXPECT_EQ(a + b, 14_ms);
  EXPECT_EQ(a - b, 6_ms);
  EXPECT_EQ(-b, Duration::millis(-4));
  EXPECT_EQ(a * 2.0, 20_ms);
  EXPECT_EQ(a / 2, 5_ms);
  EXPECT_DOUBLE_EQ(a.ratio(b), 2.5);
  EXPECT_DOUBLE_EQ(a.to_seconds(), 0.010);
  EXPECT_DOUBLE_EQ(a.to_millis(), 10.0);
  EXPECT_DOUBLE_EQ(a.to_micros(), 10'000.0);
}

TEST(Time, TimePointArithmetic) {
  TimePoint t = TimePoint::zero();
  t += 5_ms;
  EXPECT_EQ(t.count_ns(), 5'000'000);
  EXPECT_EQ(t + 5_ms - t, 5_ms);
  EXPECT_EQ((t + 5_ms) - 5_ms, t);
  EXPECT_LT(t, t + 1_ns);
}

TEST(Time, Ordering) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_GT(1_s, 999_ms);
  EXPECT_LE(Duration::zero(), 0_ns);
  EXPECT_LT(Duration::millis(-1), Duration::zero());
}

TEST(Time, ToStringPicksUnits) {
  EXPECT_EQ(to_string(1500_ns), "1.500us");
  EXPECT_EQ(to_string(12_ms), "12.000ms");
  EXPECT_EQ(to_string(2_s), "2.000s");
  EXPECT_EQ(to_string(5_ns), "5ns");
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(3_ms, [&] { order.push_back(3); });
  sim.schedule_after(1_ms, [&] { order.push_back(1); });
  sim.schedule_after(2_ms, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), TimePoint::zero() + 3_ms);
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulator, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_after(1_ms, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NestedSchedulingSeesCurrentTime) {
  Simulator sim;
  TimePoint inner_time;
  sim.schedule_after(1_ms, [&] {
    sim.schedule_after(2_ms, [&] { inner_time = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_time, TimePoint::zero() + 3_ms);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_after(1_ms, [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
  EXPECT_FALSE(sim.cancel(9999));  // unknown id
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelAfterFireIsRejected) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_after(1_ms, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  // The id has already fired; cancel must refuse it and must not corrupt
  // the pending count (the seed implementation tombstoned fired ids,
  // leaving pending() permanently wrong).
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.pending(), 0u);
  sim.schedule_after(1_ms, [&] { ++fired; });
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, DoubleCancelCountsOnce) {
  Simulator sim;
  const EventId id = sim.schedule_after(1_ms, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.events_cancelled(), 1u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, PendingExcludesLazilyDiscardedEvents) {
  Simulator sim;
  // Cancelled events stay in the priority queue until the run loop would
  // pop them; pending() must not count them in the meantime.
  std::vector<EventId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(sim.schedule_after(Duration::millis(i + 1), [] {}));
  }
  EXPECT_EQ(sim.pending(), 5u);
  EXPECT_TRUE(sim.cancel(ids[1]));
  EXPECT_TRUE(sim.cancel(ids[3]));
  EXPECT_EQ(sim.pending(), 3u);  // before any discard happens
  sim.run_until(TimePoint::zero() + 2500_us);  // fires ids[0]; discards ids[1]
  EXPECT_EQ(sim.pending(), 2u);                // ids[2], ids[4] remain
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.events_executed(), 3u);
  EXPECT_EQ(sim.events_scheduled(), 5u);
  EXPECT_EQ(sim.events_cancelled(), 2u);
}

TEST(Simulator, PendingTracksNestedScheduling) {
  Simulator sim;
  sim.schedule_after(1_ms, [&] {
    EXPECT_EQ(sim.pending(), 0u);  // this event already left pending state
    sim.schedule_after(1_ms, [] {});
    EXPECT_EQ(sim.pending(), 1u);
  });
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(1_ms, [&] { ++fired; });
  sim.schedule_after(10_ms, [&] { ++fired; });
  sim.run_until(TimePoint::zero() + 5_ms);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), TimePoint::zero() + 5_ms);
  sim.run_until(TimePoint::zero() + 20_ms);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StopEndsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(1_ms, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_after(2_ms, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(Duration::millis(-5), [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), TimePoint::zero());
}

TEST(Simulator, FootprintBoundedUnderCancelFireChurn) {
  // Regression test for the states_ leak: the seed engine kept one map
  // entry per event *ever* scheduled, so long cancel/fire churn grew
  // memory without bound. The pooled engine must recycle slots — after
  // 200k events the node pool stays at the peak concurrent-pending count
  // and the heap stays within the compaction bound.
  Simulator sim;
  constexpr int kRounds = 2'000;
  constexpr int kBatch = 100;  // peak concurrent pending per round
  std::uint64_t fired = 0;
  std::vector<EventId> ids;
  for (int r = 0; r < kRounds; ++r) {
    ids.clear();
    for (int i = 0; i < kBatch; ++i) {
      ids.push_back(
          sim.schedule_after(Duration::micros(i + 1), [&] { ++fired; }));
    }
    for (int i = 0; i < kBatch; i += 2) EXPECT_TRUE(sim.cancel(ids[i]));
    sim.run();
  }
  EXPECT_EQ(sim.events_scheduled(), kRounds * kBatch);
  EXPECT_EQ(fired, kRounds * kBatch / 2);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_LE(sim.pool_slots(), static_cast<std::size_t>(kBatch));
  EXPECT_LE(sim.queue_size(), 4 * sim.pending() + 64);
}

TEST(Simulator, QueueCompactsUnderCancelOnlyChurn) {
  // Cancel without ever running: lazy discard never gets a chance, so
  // compaction alone must keep the heap from accumulating stale entries.
  Simulator sim;
  for (int r = 0; r < 1'000; ++r) {
    std::vector<EventId> ids;
    for (int i = 0; i < 64; ++i) {
      ids.push_back(sim.schedule_after(Duration::millis(i + 1), [] {}));
    }
    for (const EventId id : ids) EXPECT_TRUE(sim.cancel(id));
    EXPECT_LE(sim.queue_size(), 4 * sim.pending() + 64);
  }
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_LE(sim.pool_slots(), 64u);
}

TEST(Simulator, StaleIdFromRecycledSlotIsRejected) {
  // After a slot is recycled, an old EventId that maps to it must not
  // cancel the new occupant: generations disambiguate.
  Simulator sim;
  const EventId old_id = sim.schedule_after(1_ms, [] {});
  ASSERT_TRUE(sim.cancel(old_id));
  int fired = 0;
  const EventId new_id = sim.schedule_after(1_ms, [&] { ++fired; });
  EXPECT_NE(old_id, new_id);
  EXPECT_FALSE(sim.cancel(old_id));  // stale handle, same slot
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, GenerationWraparoundNeverRevalidatesAncientId) {
  // A slot's generation counter is 32 bits. Without a wrap guard, the
  // 2^32-th reuse of a slot walks its generation back to a value it has
  // already issued, and an EventId held since then validates against an
  // unrelated future event — cancel(ancient_id) kills someone else's
  // timer. The guard retires a slot whose generation wraps to 0 instead
  // of recycling it; this drives the wrap via the test hook rather than
  // four billion real schedule/release cycles.
  Simulator sim;

  // First event ever: slot 0, generation 0.
  const EventId ancient_id = sim.schedule_after(1_ms, [] {});
  sim.run();  // fires; slot 0 freed at generation 1
  const auto slot_of = [](EventId id) {
    return static_cast<std::uint32_t>(id) - 1;
  };
  ASSERT_EQ(slot_of(ancient_id), 0u);
  ASSERT_EQ(ancient_id >> 32, 0u);  // minted at generation 0

  // Fast-forward slot 0 to the last generation before the wrap and burn
  // one more schedule/fire cycle through it.
  sim.set_slot_generation_for_test(0, 0xFFFFFFFFu);
  const EventId last_gen_id = sim.schedule_after(1_ms, [] {});
  ASSERT_EQ(slot_of(last_gen_id), 0u);
  ASSERT_EQ(last_gen_id >> 32, 0xFFFFFFFFu);
  sim.run();  // fires; ++generation wraps to 0 → slot must retire

  // The next event must not land in slot 0: if it did, it would be
  // minted at generation 0 and ancient_id would alias it exactly.
  int fired = 0;
  const EventId fresh_id = sim.schedule_after(1_ms, [&] { ++fired; });
  EXPECT_NE(slot_of(fresh_id), 0u);
  EXPECT_NE(fresh_id, ancient_id);

  // The ancient handle stays dead, and cancelling it must not disturb
  // the live event.
  EXPECT_FALSE(sim.cancel(ancient_id));
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(Callback, TypicalEventClosuresStayInline) {
  // The whole point of the 224-byte buffer: a closure owning a ~170-byte
  // packet payload plus a simulator pointer must not heap-allocate.
  struct FakePacket {
    unsigned char payload[168];
  };
  Simulator* sim = nullptr;
  FakePacket pkt{};
  auto closure = [sim, pkt] { (void)sim; };
  EXPECT_TRUE(Callback::fits_inline<decltype(closure)>());

  struct Oversized {
    unsigned char blob[Callback::kInlineSize + 1];
    void operator()() const {}
  };
  EXPECT_FALSE(Callback::fits_inline<Oversized>());
}

TEST(Callback, OversizedCallableStillRunsViaHeapFallback) {
  struct Big {
    unsigned char blob[512];
    int* out;
    void operator()() const { *out = static_cast<int>(blob[0]) + 1; }
  };
  static_assert(!Callback::fits_inline<Big>());
  int result = 0;
  Simulator sim;
  sim.schedule_after(1_ms, Big{{}, &result});
  sim.run();
  EXPECT_EQ(result, 1);
}

TEST(Callback, MoveOnlyCaptureIsSupported) {
  // std::function required copyable callables; Callback must not.
  auto owned = std::make_unique<int>(41);
  int result = 0;
  Simulator sim;
  sim.schedule_after(1_ms,
                     [p = std::move(owned), &result] { result = *p + 1; });
  sim.run();
  EXPECT_EQ(result, 42);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42, 1), b(42, 1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, StreamsDiffer) {
  Rng a(42, 1), b(42, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntRespectsBound) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100'000; ++i) {
    const auto v = rng.uniform_int(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) {
    EXPECT_GT(c, 9'000);
    EXPECT_LT(c, 11'000);
  }
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(7);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(7);
  double sum = 0, sq = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 3.0, 0.05);
}

TEST(Rng, ParetoBoundedBelowByScale) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(rng.pareto(4.0, 1.3), 4.0);
}

}  // namespace
}  // namespace zhuge::sim
