// Evaluation-matrix suite (src/app/eval.*): cell-count completeness (no
// silently skipped cells), CDF monotonicity of every verdict, report
// round-trips (JSON full-inverse, CSV bit-exact spot checks), serial vs
// 4-thread verdict-fingerprint identity, strict EvalSpec rejection of the
// known-bad fixtures, and the shipped example spec.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "app/eval.hpp"

namespace zhuge::app {
namespace {

/// A small-but-representative matrix: all four mechanisms, both workload
/// families, a WiFi and a cellular trace, single-station cells. 16 cells,
/// a few hundred ms wall clock; shared across the suite.
EvalSpec small_spec() {
  EvalSpec spec;
  spec.name = "eval_test_matrix";
  spec.duration_s = 4.0;
  spec.warmup_s = 1.0;
  spec.seed = 3;
  spec.ccas = {EvalCca::kGcc, EvalCca::kCubic};
  spec.traces = {trace::TraceKind::kRestaurantWifi,
                 trace::TraceKind::kIndoorMixed45G};
  spec.densities = {1};
  return spec;
}

const EvalMatrixResult& small_result() {
  static const EvalMatrixResult res =
      run_eval_matrix(expand_eval_matrix(small_spec()), 2);
  return res;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// Expansion: complete, uniquely named, explicitly flagged inert cells
// ---------------------------------------------------------------------------

TEST(EvalMatrix, ExpansionCoversTheFullAxisProduct) {
  const auto spec = small_spec();
  const auto cells = expand_eval_matrix(spec);
  ASSERT_EQ(cells.size(), spec.mechanisms.size() * spec.ccas.size() *
                              spec.traces.size() * spec.densities.size());
  std::set<std::string> names;
  for (const auto& c : cells) {
    EXPECT_TRUE(names.insert(c.name).second) << "duplicate cell " << c.name;
    EXPECT_EQ(c.scenario.duration_s, spec.duration_s);
    EXPECT_EQ(c.scenario.station_count(), c.density);
    EXPECT_EQ(c.scenario.flows.size(), static_cast<std::size_t>(c.density));
  }
  // Inert combinations (fastack/abc under GCC: both act on TCP only) are
  // present and flagged, not skipped.
  int inert = 0;
  for (const auto& c : cells) {
    if (!c.mechanism_active) ++inert;
    if (c.cca == EvalCca::kGcc &&
        (c.mechanism == ApMode::kFastAck || c.mechanism == ApMode::kAbc)) {
      EXPECT_FALSE(c.mechanism_active) << c.name;
    }
    if (c.mechanism == ApMode::kZhuge) {
      EXPECT_TRUE(c.mechanism_active) << c.name;
    }
    if (c.mechanism == ApMode::kNone) {
      EXPECT_FALSE(c.mechanism_active) << c.name;
    }
  }
  EXPECT_GT(inert, 0);
}

TEST(EvalMatrix, EveryCellIsJudged) {
  const auto cells = expand_eval_matrix(small_spec());
  const auto& res = small_result();
  ASSERT_EQ(res.cells.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    // Grid order is preserved and nothing was silently dropped.
    EXPECT_EQ(res.cells[i].name, cells[i].name);
    EXPECT_NE(res.cells[i].fingerprint, 0u) << cells[i].name;
    EXPECT_GT(res.cells[i].frames_sent, 0u) << cells[i].name;
  }
  // Every (trace, cca, density) point with a zhuge and a vanilla cell got
  // a headline verdict: 2 traces x 2 ccas x 1 density.
  EXPECT_EQ(res.headline.size(), 4u);
}

// ---------------------------------------------------------------------------
// Verdict sanity: CDFs monotone, ratios in range
// ---------------------------------------------------------------------------

TEST(EvalMatrix, CdfsAreMonotoneAndRatiosBounded) {
  for (const auto& c : small_result().cells) {
    SCOPED_TRACE(c.name);
    ASSERT_EQ(c.frame_delay_cdf_ms.size(),
              static_cast<std::size_t>(kEvalCdfDeciles));
    for (int d = 1; d < kEvalCdfDeciles; ++d) {
      EXPECT_LE(c.frame_delay_cdf_ms[d - 1], c.frame_delay_cdf_ms[d])
          << "decile " << d;
    }
    // The named quantiles sit on/above the decile grid in order.
    EXPECT_LE(c.frame_delay_cdf_ms.front(), c.frame_delay_p50_ms);
    EXPECT_LE(c.frame_delay_p50_ms, c.frame_delay_p95_ms);
    EXPECT_LE(c.frame_delay_p95_ms, c.frame_delay_p99_ms);
    EXPECT_GE(c.delayed_frame_ratio, 0.0);
    EXPECT_LE(c.delayed_frame_ratio, 1.0);
    EXPECT_GE(c.stall_rate, 0.0);
    EXPECT_LE(c.stall_rate, 1.0);
    EXPECT_LE(c.frames_decoded, c.frames_sent);
    EXPECT_EQ(c.fingerprint, eval_cell_fingerprint(c));
  }
}

// ---------------------------------------------------------------------------
// Thread-count independence
// ---------------------------------------------------------------------------

TEST(EvalMatrix, SerialAndFourThreadVerdictsAreBitIdentical) {
  const auto cells = expand_eval_matrix(small_spec());
  const auto serial = run_eval_matrix(cells, 1);
  const auto threaded = run_eval_matrix(cells, 4);
  ASSERT_EQ(serial.cells.size(), threaded.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].fingerprint, threaded.cells[i].fingerprint)
        << serial.cells[i].name;
    EXPECT_EQ(serial.cells[i].result_fingerprint,
              threaded.cells[i].result_fingerprint)
        << serial.cells[i].name;
  }
  EXPECT_EQ(serial.fingerprint, threaded.fingerprint);
  // And the memoised suite result (2 threads) agrees too.
  EXPECT_EQ(small_result().fingerprint, serial.fingerprint);
}

// ---------------------------------------------------------------------------
// Report round-trips
// ---------------------------------------------------------------------------

TEST(EvalReport, JsonRoundTripsEveryField) {
  const auto& res = small_result();
  const std::string text = eval_report_to_json(res).dump(2);
  std::string err;
  const auto parsed = Json::parse(text, &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  const auto back = eval_report_from_json(*parsed, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->fingerprint, res.fingerprint);
  ASSERT_EQ(back->cells.size(), res.cells.size());
  for (std::size_t i = 0; i < res.cells.size(); ++i) {
    SCOPED_TRACE(res.cells[i].name);
    const auto& a = res.cells[i];
    const auto& b = back->cells[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.mechanism, b.mechanism);
    EXPECT_EQ(a.cca, b.cca);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.density, b.density);
    EXPECT_EQ(a.mechanism_active, b.mechanism_active);
    ASSERT_EQ(a.frame_delay_cdf_ms.size(), b.frame_delay_cdf_ms.size());
    for (std::size_t d = 0; d < a.frame_delay_cdf_ms.size(); ++d) {
      EXPECT_EQ(a.frame_delay_cdf_ms[d], b.frame_delay_cdf_ms[d]);  // bitwise
    }
    EXPECT_EQ(a.frame_delay_p50_ms, b.frame_delay_p50_ms);
    EXPECT_EQ(a.frame_delay_p95_ms, b.frame_delay_p95_ms);
    EXPECT_EQ(a.frame_delay_p99_ms, b.frame_delay_p99_ms);
    EXPECT_EQ(a.delayed_frame_ratio, b.delayed_frame_ratio);
    EXPECT_EQ(a.stall_rate, b.stall_rate);
    EXPECT_EQ(a.rtt_p50_ms, b.rtt_p50_ms);
    EXPECT_EQ(a.rtt_p95_ms, b.rtt_p95_ms);
    EXPECT_EQ(a.goodput_bps, b.goodput_bps);
    EXPECT_EQ(a.frames_sent, b.frames_sent);
    EXPECT_EQ(a.frames_decoded, b.frames_decoded);
    EXPECT_EQ(a.result_fingerprint, b.result_fingerprint);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    // The reconstructed cell still fingerprint-checks: corruption anywhere
    // in serialisation would break this.
    EXPECT_EQ(eval_cell_fingerprint(b), b.fingerprint);
  }
  ASSERT_EQ(back->headline.size(), res.headline.size());
  for (std::size_t i = 0; i < res.headline.size(); ++i) {
    EXPECT_EQ(back->headline[i].name, res.headline[i].name);
    EXPECT_EQ(back->headline[i].zhuge_p95_ms, res.headline[i].zhuge_p95_ms);
    EXPECT_EQ(back->headline[i].vanilla_p95_ms, res.headline[i].vanilla_p95_ms);
    EXPECT_EQ(back->headline[i].zhuge_wins, res.headline[i].zhuge_wins);
  }
}

TEST(EvalReport, CsvIsCompleteAndBitExact) {
  const auto& res = small_result();
  std::ostringstream out;
  write_eval_report_csv(res, out);
  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  // Header fixes the column layout; count its columns.
  const auto columns = [](const std::string& s) {
    std::size_t n = 1;
    for (char ch : s) n += ch == ',' ? 1 : 0;
    return n;
  };
  const std::size_t width = columns(line);
  ASSERT_TRUE(line.rfind("cell,", 0) == 0) << line;
  std::vector<std::string> rows;
  while (std::getline(in, line)) {
    if (!line.empty()) rows.push_back(line);
  }
  // One row per cell, every row rectangular.
  ASSERT_EQ(rows.size(), res.cells.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(columns(rows[i]), width) << rows[i];
    // Row order is grid order; the first field is the cell name.
    EXPECT_EQ(rows[i].substr(0, rows[i].find(',')), res.cells[i].name);
    // %.17g bit-exactness spot check: field 7 is frame_delay_p50_ms.
    std::istringstream row(rows[i]);
    std::string field;
    for (int f = 0; f < 7; ++f) ASSERT_TRUE(std::getline(row, field, ','));
    EXPECT_EQ(std::strtod(field.c_str(), nullptr),
              res.cells[i].frame_delay_p50_ms)
        << rows[i];
  }
}

// ---------------------------------------------------------------------------
// Strict EvalSpec parsing: fixtures pin the exact line-numbered messages
// ---------------------------------------------------------------------------

struct EvalFixtureCase {
  const char* file;
  const char* expected_error;
};

// A typo'd axis value or key must fail loudly — the failure mode it guards
// against is a silently shrunken matrix that still claims full coverage.
const EvalFixtureCase kEvalFixtures[] = {
    {"eval_bad_mechanism.json",
     "line 6: mechanisms[] must be vanilla|zhuge|fastack|abc"},
    {"eval_unknown_key.json", "line 4: eval: unknown key \"tracess\""},
};

TEST(EvalSpecFixtures, KnownBadSpecsFailWithPinnedMessages) {
  for (const auto& fc : kEvalFixtures) {
    SCOPED_TRACE(fc.file);
    const std::string text =
        read_file(std::string(ZHUGE_SPEC_FIXTURE_DIR) + "/" + fc.file);
    ASSERT_FALSE(text.empty());
    std::string err;
    const auto spec = parse_eval_spec(text, &err);
    EXPECT_FALSE(spec.has_value());
    EXPECT_EQ(err, fc.expected_error);
  }
}

TEST(EvalSpecFixtures, ShippedExampleSpecLoadsAndExpands) {
  std::string err;
  const auto spec = load_eval_spec(
      std::string(ZHUGE_SPEC_DIR) + "/eval_w1_dense.json", &err);
  ASSERT_TRUE(spec.has_value()) << err;
  const auto cells = expand_eval_matrix(*spec);
  EXPECT_FALSE(cells.empty());
  // The example narrows to W1 but keeps all mechanisms.
  for (const auto& c : cells) EXPECT_EQ(c.trace, trace::TraceKind::kRestaurantWifi);
  EXPECT_EQ(cells.size(), spec->mechanisms.size() * spec->ccas.size() *
                              spec->densities.size());
}

}  // namespace
}  // namespace zhuge::app
