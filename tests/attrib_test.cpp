// Latency-attribution suite: aggregation semantics, fingerprint
// neutrality, thread-count determinism of the stage CDFs, trace
// round-trip, report rendering, and the pinned per-stage golden anchor.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "app/golden.hpp"
#include "app/scenario.hpp"
#include "app/spec.hpp"
#include "app/sweep.hpp"
#include "obs/attrib.hpp"
#include "obs/export.hpp"
#include "obs/spans.hpp"
#include "obs/trace_reader.hpp"
#include "obs/tracer.hpp"

namespace {

using namespace zhuge;

const std::string kGoldenDir = ZHUGE_GOLDEN_DIR;
const std::string kSpecDir = ZHUGE_SPEC_DIR;

app::ScenarioSpec load_dense_spec() {
  std::string err;
  const auto spec =
      app::load_scenario_spec(kSpecDir + "/dense_64sta_churn.json", &err);
  EXPECT_TRUE(spec.has_value()) << err;
  return *spec;
}

/// Bit-exact histogram equality: same spec, same per-bucket counts, same
/// scalar accumulators. This is the determinism contract the stage CDFs
/// promise across thread counts.
void expect_histograms_identical(const obs::Histogram& a,
                                 const obs::Histogram& b,
                                 const std::string& label) {
  ASSERT_EQ(a.bucket_count(), b.bucket_count()) << label;
  EXPECT_EQ(a.count(), b.count()) << label;
  EXPECT_EQ(a.sum(), b.sum()) << label;
  EXPECT_EQ(a.min(), b.min()) << label;
  EXPECT_EQ(a.max(), b.max()) << label;
  for (std::size_t i = 0; i < a.bucket_count(); ++i) {
    ASSERT_EQ(a.bucket_value(i), b.bucket_value(i))
        << label << " bucket " << i;
  }
}

void expect_attributions_identical(const obs::Attribution& a,
                                   const obs::Attribution& b) {
  EXPECT_EQ(a.packets(), b.packets());
  EXPECT_EQ(a.frames(), b.frames());
  EXPECT_EQ(a.truncated_flows(), b.truncated_flows());
  for (std::size_t s = 0; s < obs::kStageCount; ++s) {
    const auto st = static_cast<obs::Stage>(s);
    expect_histograms_identical(a.all().stage(st), b.all().stage(st),
                                std::string("all/") + obs::stage_name(st));
    expect_histograms_identical(a.group(true).stage(st),
                                b.group(true).stage(st),
                                std::string("on/") + obs::stage_name(st));
    expect_histograms_identical(a.group(false).stage(st),
                                b.group(false).stage(st),
                                std::string("off/") + obs::stage_name(st));
  }
}

/// Restores every obs switch the attribution machinery can flip.
struct ObsGuard {
  ~ObsGuard() {
    obs::set_attrib_enabled(false);
    obs::set_tracing_enabled(false);
    obs::reset();
  }
};

TEST(AttribUnit, RecordPacketSkipsMissingStamps) {
  obs::Attribution a;
  obs::PacketSpan span;  // all stamps -1
  a.record_packet(/*flow_key=*/1, /*optimized=*/true, /*sent_ns=*/1000,
                  /*ap_in_ns=*/2000, /*delivered_ns=*/5000, span);
  EXPECT_EQ(a.packets(), 1u);
  // Only the stages whose boundary stamps exist get a sample: wan
  // (sent -> AP ingress) and e2e (sent -> delivered fallback origin).
  EXPECT_EQ(a.all().stage(obs::Stage::kWan).count(), 1u);
  EXPECT_EQ(a.all().stage(obs::Stage::kE2e).count(), 1u);
  EXPECT_EQ(a.all().stage(obs::Stage::kPacing).count(), 0u);
  EXPECT_EQ(a.all().stage(obs::Stage::kApQueue).count(), 0u);
  EXPECT_EQ(a.all().stage(obs::Stage::kAir).count(), 0u);
  EXPECT_DOUBLE_EQ(a.all().stage(obs::Stage::kWan).sum(), 1.0);   // 1 us
  EXPECT_DOUBLE_EQ(a.all().stage(obs::Stage::kE2e).sum(), 4.0);   // 4 us
}

TEST(AttribUnit, FullSpanPopulatesEveryPacketStage) {
  obs::Attribution a;
  obs::PacketSpan span;
  span.paced_ns = 0;
  span.ap_dequeue_ns = 4000;
  span.first_air_ns = 4500;
  a.record_packet(1, false, /*sent_ns=*/1000, /*ap_in_ns=*/3000,
                  /*delivered_ns=*/6000, span);
  EXPECT_EQ(a.all().stage(obs::Stage::kPacing).count(), 1u);
  EXPECT_EQ(a.all().stage(obs::Stage::kApQueue).count(), 1u);
  EXPECT_EQ(a.all().stage(obs::Stage::kAir).count(), 1u);
  // Origin is the pacer stamp when present: e2e = 6 us, not 5.
  EXPECT_DOUBLE_EQ(a.all().stage(obs::Stage::kE2e).sum(), 6.0);
  // Group split: this was a non-optimized flow.
  EXPECT_TRUE(a.group(true).empty());
  EXPECT_FALSE(a.group(false).empty());
}

TEST(AttribUnit, MergeAddsCountsAndBuckets) {
  obs::Attribution a;
  obs::Attribution b;
  obs::PacketSpan span;
  a.record_packet(1, true, 0, 1000, 5000, span);
  b.record_packet(2, false, 0, 2000, 9000, span);
  b.record_packet(1, true, 0, 1000, 5000, span);

  obs::Attribution merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.packets(), 3u);
  EXPECT_EQ(merged.all().stage(obs::Stage::kE2e).count(), 3u);
  EXPECT_EQ(merged.flows().size(), 2u);
  EXPECT_EQ(merged.flows().at(1).stage(obs::Stage::kE2e).count(), 2u);

  // Merging is count-preserving against the replay order.
  obs::Attribution replay;
  replay.record_packet(1, true, 0, 1000, 5000, span);
  replay.record_packet(2, false, 0, 2000, 9000, span);
  replay.record_packet(1, true, 0, 1000, 5000, span);
  expect_attributions_identical(merged, replay);
}

TEST(AttribUnit, FrameSpanStages) {
  obs::Attribution a;
  obs::FrameSpan s;
  s.flow_key = 7;
  s.frame_id = 42;
  s.capture_ns = 0;
  s.first_arrival_ns = 20'000'000;   // 20 ms
  s.complete_ns = 24'000'000;        // +4 ms reassembly
  s.decode_ns = 25'000'000;          // +1 ms jitter-buffer wait
  s.packets = 9;
  a.record_frame(true, s);
  EXPECT_EQ(a.frames(), 1u);
  EXPECT_DOUBLE_EQ(a.all().stage(obs::Stage::kReassembly).sum(), 4000.0);
  EXPECT_DOUBLE_EQ(a.all().stage(obs::Stage::kDecodeWait).sum(), 1000.0);
  EXPECT_DOUBLE_EQ(a.all().stage(obs::Stage::kFrameE2e).sum(), 25000.0);
}

TEST(AttribUnit, ReportRenderers) {
  obs::Attribution a;
  obs::PacketSpan span;
  span.paced_ns = 0;
  span.ap_dequeue_ns = 4000;
  span.first_air_ns = 4500;
  a.record_packet(1, true, 1000, 3000, 6000, span);
  a.record_packet(2, false, 1000, 3000, 7000, span);

  std::ostringstream text;
  obs::write_attrib_report_text(a, text);
  EXPECT_NE(text.str().find("latency attribution: 2 packets"),
            std::string::npos);
  EXPECT_NE(text.str().find("budget waterfall"), std::string::npos);
  EXPECT_NE(text.str().find("zhuge_on vs zhuge_off"), std::string::npos);

  std::ostringstream csv;
  obs::write_attrib_report_csv(a, csv);
  EXPECT_NE(csv.str().find("scope,stage,count,mean_us"), std::string::npos);
  EXPECT_NE(csv.str().find("flow1,"), std::string::npos);

  std::ostringstream json;
  obs::write_attrib_report_json(a, json);
  std::string err;
  const auto parsed = app::Json::parse(json.str(), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  const app::Json* scopes = parsed->find("scopes");
  ASSERT_NE(scopes, nullptr);
  ASSERT_NE(scopes->find("all"), nullptr);
  ASSERT_NE(scopes->find("all")->find("e2e"), nullptr);
}

TEST(AttribUnit, ExportMetricsPublishesStageHistograms) {
  obs::Attribution a;
  obs::PacketSpan span;
  a.record_packet(1, true, 0, 1000, 5000, span);
  obs::Registry reg;
  a.export_metrics(reg, "attrib");
  EXPECT_EQ(reg.counters().at("attrib.packets").value(), 1u);
  EXPECT_EQ(reg.histograms().at("attrib.e2e_us").count(), 1u);
  EXPECT_EQ(reg.histograms().at("attrib.zhuge_on.wan_us").count(), 1u);
}

TEST(AttribIntegration, FingerprintUnchangedByAttribution) {
  const auto spec = load_dense_spec();
  std::vector<app::SpecSweepPoint> grid{{spec.name, spec, spec.seed}};

  const auto off = app::run_spec_sweep(grid, {.threads = 1, .attrib = false});
  const auto on = app::run_spec_sweep(grid, {.threads = 1, .attrib = true});
  ASSERT_EQ(off.size(), 1u);
  ASSERT_EQ(on.size(), 1u);

  // The attribution sink is pure observation: the 64-bit fingerprint over
  // every numeric result field is bit-identical with the switch on.
  EXPECT_EQ(off.front().fingerprint, on.front().fingerprint);
  EXPECT_TRUE(off.front().result.attrib.empty());
  EXPECT_FALSE(on.front().result.attrib.empty());
  EXPECT_GT(on.front().result.attrib.packets(), 0u);
  EXPECT_GT(on.front().result.attrib.frames(), 0u);
}

TEST(AttribIntegration, StageCdfsIdenticalAcrossThreadCounts) {
  const auto spec = load_dense_spec();
  const auto grid = app::cross_spec_seeds(spec, {1, 2, 3});

  const auto serial = app::run_spec_sweep(grid, {.threads = 1, .attrib = true});
  const auto pooled = app::run_spec_sweep(grid, {.threads = 8, .attrib = true});
  ASSERT_EQ(serial.size(), pooled.size());

  obs::Attribution serial_merged;
  obs::Attribution pooled_merged;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].fingerprint, pooled[i].fingerprint) << serial[i].name;
    serial_merged.merge(serial[i].result.attrib);
    pooled_merged.merge(pooled[i].result.attrib);
  }
  expect_attributions_identical(serial_merged, pooled_merged);
}

TEST(AttribIntegration, TraceRoundTripReproducesAggregate) {
  ObsGuard guard;
  obs::reset();
  obs::set_tracing_enabled(true);
  obs::set_attrib_enabled(true);

  const auto cfg = app::golden_scenario_config("rtp_zhuge_single");
  ASSERT_TRUE(cfg.has_value());
  const app::ScenarioResult live = app::run_scenario(*cfg);
  ASSERT_FALSE(live.attrib.empty());

  std::ostringstream jsonl;
  obs::write_trace_jsonl(obs::tracer(), jsonl);
  std::istringstream in(jsonl.str());
  const auto events = obs::load_trace(in);
  ASSERT_FALSE(events.empty());

  obs::Attribution replayed;
  for (const auto& ev : events) replayed.add_trace_event(ev);

  // Every span record replays to the same stage sample counts; values go
  // through %.9g text so quantiles agree to rendering precision.
  EXPECT_EQ(replayed.packets(), live.attrib.packets());
  EXPECT_EQ(replayed.frames(), live.attrib.frames());
  for (std::size_t s = 0; s < obs::kStageCount; ++s) {
    const auto st = static_cast<obs::Stage>(s);
    const auto& lh = live.attrib.all().stage(st);
    const auto& rh = replayed.all().stage(st);
    ASSERT_EQ(rh.count(), lh.count()) << obs::stage_name(st);
    if (lh.count() == 0) continue;
    EXPECT_NEAR(rh.quantile(0.95), lh.quantile(0.95),
                1e-6 * std::max(1.0, lh.quantile(0.95)))
        << obs::stage_name(st);
  }
}

TEST(AttribIntegration, GoldenStageP95Anchor) {
  std::string err;
  const auto expected = app::load_attrib_golden_file(
      kGoldenDir + "/attrib_dense64.json", &err);
  ASSERT_TRUE(expected.has_value()) << err;

  const auto spec = load_dense_spec();
  const auto runs = app::run_spec_sweep({{spec.name, spec, spec.seed}},
                                        {.threads = 1, .attrib = true});
  const auto actual = app::make_attrib_golden(expected->name, spec.seed,
                                              runs.front().result.attrib);
  const auto diffs = app::compare_attrib_golden(*expected, actual);
  for (const auto& d : diffs) ADD_FAILURE() << d;
}

TEST(AttribUnit, GoldenCompareNamesDriftingStage) {
  app::AttribGolden expected;
  expected.name = "x";
  expected.stage_p95_us["ap_queue"] = 100.0;
  expected.stage_p95_us["air"] = 50.0;
  app::AttribGolden actual = expected;
  actual.stage_p95_us["ap_queue"] = 150.0;
  const auto diffs = app::compare_attrib_golden(expected, actual);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_NE(diffs.front().find("ap_queue"), std::string::npos);
  EXPECT_NE(diffs.front().find("+50.00%"), std::string::npos);
}

TEST(AttribUnit, GoldenJsonRoundTrip) {
  app::AttribGolden rec;
  rec.name = "rt";
  rec.seed = 9;
  rec.stage_p95_us["e2e"] = 50319.4377;
  rec.stage_p95_us["wan"] = 20099.4571;
  std::string err;
  const auto back = app::attrib_golden_from_json(
      app::attrib_golden_to_json(rec), &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->name, rec.name);
  EXPECT_EQ(back->seed, rec.seed);
  EXPECT_TRUE(app::compare_attrib_golden(rec, *back).empty());
}

}  // namespace
