// Unit tests for the comparison baselines: FastAck (IMC '17) and the ABC
// router (NSDI '20) — plus integration runs of each baseline as the AP
// mechanism on a small multi-station scenario (the eval matrix's
// mechanism axis), pinning one fingerprint per mechanism.

#include <gtest/gtest.h>

#include <cstdint>

#include "app/scenario.hpp"
#include "app/spec.hpp"
#include "app/sweep.hpp"
#include "baseline/abc_router.hpp"
#include "baseline/fastack.hpp"

namespace zhuge::baseline {
namespace {

using net::Packet;
using sim::Duration;
using sim::TimePoint;
using namespace sim::literals;

TimePoint at(std::int64_t ms) { return TimePoint::zero() + Duration::millis(ms); }

Packet tcp_data(std::uint64_t seq, std::uint64_t end, std::uint64_t ts = 0) {
  Packet p;
  p.flow = net::FlowId{1, 2, 10, 20, 6};
  net::TcpHeader h;
  h.seq = seq;
  h.end_seq = end;
  h.ts_val = ts;
  p.header = h;
  return p;
}

TEST(FastAck, ForgesCumulativeAcks) {
  FastAck fa({});
  auto a1 = fa.on_wireless_delivered(tcp_data(0, 1200, 7), at(1), 100);
  ASSERT_TRUE(a1.has_value());
  EXPECT_TRUE(a1->tcp().is_ack);
  EXPECT_EQ(a1->tcp().ack, 1200u);
  EXPECT_EQ(a1->tcp().ts_echo, 7u);
  EXPECT_EQ(a1->flow, tcp_data(0, 0).flow.reversed());

  auto a2 = fa.on_wireless_delivered(tcp_data(1200, 2400), at(2), 101);
  ASSERT_TRUE(a2.has_value());
  EXPECT_EQ(a2->tcp().ack, 2400u);
}

TEST(FastAck, HandlesOutOfOrderDelivery) {
  FastAck fa({});
  auto a1 = fa.on_wireless_delivered(tcp_data(1200, 2400), at(1), 100);
  ASSERT_TRUE(a1.has_value());
  EXPECT_EQ(a1->tcp().ack, 0u);         // hole at the front
  EXPECT_EQ(a1->tcp().sack_upto, 2400u);
  auto a2 = fa.on_wireless_delivered(tcp_data(0, 1200), at(2), 101);
  ASSERT_TRUE(a2.has_value());
  EXPECT_EQ(a2->tcp().ack, 2400u);  // hole filled, prefix jumps
}

TEST(FastAck, IgnoresNonTcpPackets) {
  FastAck fa({});
  Packet rtp;
  rtp.header = net::RtpHeader{};
  EXPECT_FALSE(fa.on_wireless_delivered(rtp, at(1), 100).has_value());
}

TEST(FastAck, DropsClientPureAcks) {
  Packet ack;
  net::TcpHeader h;
  h.is_ack = true;
  ack.header = h;
  EXPECT_TRUE(FastAck::should_drop_uplink(ack));
  Packet data = tcp_data(0, 1200);
  EXPECT_FALSE(FastAck::should_drop_uplink(data));
}

TEST(AbcRouter, MarksAccelerateWhenUnderutilised) {
  AbcRouter router;
  // Dequeues at 10 Mbps, arrivals at 2 Mbps, empty queue: everything
  // should accelerate.
  std::int64_t t = 0;
  int accel = 0, total = 0;
  for (int i = 0; i < 400; ++i) {
    t += 1;
    router.on_dequeue(1250, at(t));  // 10 Mbps
    if (i % 5 == 0) {                // arrivals at 2 Mbps
      ++total;
      if (router.mark(1250, Duration::zero(), at(t)) == net::AbcMark::kAccelerate) {
        ++accel;
      }
    }
  }
  EXPECT_GT(accel, total * 8 / 10);
}

TEST(AbcRouter, BrakesUnderQueueDelay) {
  AbcRouter router;
  std::int64_t t = 0;
  // Arrivals match dequeues (10 Mbps) but a large standing queue delay
  // drives the target rate to zero: everything brakes.
  int brake = 0, total = 0;
  for (int i = 0; i < 400; ++i) {
    t += 1;
    router.on_dequeue(1250, at(t));
    ++total;
    if (router.mark(1250, 200_ms, at(t)) == net::AbcMark::kBrake) ++brake;
  }
  EXPECT_GT(brake, total * 9 / 10);
}

TEST(AbcRouter, MarkFractionTracksTargetOverCurrent) {
  AbcRouter::Config cfg;
  cfg.eta = 1.0;
  AbcRouter router(cfg);
  std::int64_t t = 0;
  // Dequeue rate 5 Mbps, arrival rate 10 Mbps, no queue delay: target/cr
  // = 0.5, so about half the packets should be accelerate.
  int accel = 0, total = 0;
  for (int i = 0; i < 2000; ++i) {
    t += 1;
    if (i % 2 == 0) router.on_dequeue(1250, at(t));  // 5 Mbps
    ++total;
    if (router.mark(1250, Duration::zero(), at(t)) == net::AbcMark::kAccelerate) {
      ++accel;
    }
  }
  const double frac = static_cast<double>(accel) / total;
  EXPECT_GT(frac, 0.35);
  EXPECT_LT(frac, 0.65);
}

// ---------------------------------------------------------------------------
// Baselines as the AP mechanism, end to end
// ---------------------------------------------------------------------------

/// Two W1 trace-driven stations, one optimised TCP flow each. ABC runs its
/// cooperating sender (the mechanism replaces the host stack); the others
/// compete with CUBIC.
app::ScenarioSpec small_mechanism_spec(app::ApMode mode) {
  app::ScenarioSpec spec;
  spec.name = "baseline_small";
  spec.duration_s = 6.0;
  spec.warmup_s = 1.0;
  spec.seed = 7;
  spec.ap_mode = mode;
  app::StationGroupSpec g;
  g.count = 2;
  g.trace_class = trace::TraceKind::kRestaurantWifi;
  spec.stations = {g};
  for (int i = 0; i < 2; ++i) {
    app::SpecFlow f;
    f.kind = mode == app::ApMode::kAbc ? app::SpecFlowKind::kTcpAbc
                                       : app::SpecFlowKind::kTcpCubic;
    f.station = i;
    f.zhuge = true;
    f.start_s = 0.2 * i;
    spec.flows.push_back(f);
  }
  return spec;
}

app::MultiStationResult run_mechanism(app::ApMode mode) {
  return app::run_multi_station(small_mechanism_spec(mode));
}

void expect_clean_run(const app::MultiStationResult& r) {
  // Every flow moved traffic, and none of the feedback-path safety
  // invariants (feedback.ack_order, feedback.twcc_monotone,
  // feedback.hold_bound, ...) fired — a baseline that reorders or
  // regresses feedback is a broken baseline, not a slow one.
  EXPECT_EQ(r.invariant_violations, 0u);
  EXPECT_EQ(r.stranded_acks, 0u);
  ASSERT_EQ(r.flows.size(), 2u);
  for (const auto& f : r.flows) {
    EXPECT_GT(f.packets_delivered, 0u) << "flow " << f.index;
    EXPECT_GT(f.goodput_bps, 0.0) << "flow " << f.index;
  }
}

/// Pinned per-mechanism fingerprints: the mechanism axis of the eval
/// matrix must stay bit-stable. Refresh (after an intentional behaviour
/// change) by running this suite and copying the "got" values.
struct MechanismPin {
  app::ApMode mode;
  const char* name;
  std::uint64_t fingerprint;
};

constexpr MechanismPin kMechanismPins[] = {
    {app::ApMode::kNone, "vanilla", 0x9cf75a18dc09e18full},
    {app::ApMode::kZhuge, "zhuge", 0x85c0955d4bef0a92ull},
    {app::ApMode::kFastAck, "fastack", 0xa4d009155353be9cull},
    {app::ApMode::kAbc, "abc", 0x0ff8908347294ee5ull},
};

TEST(BaselineIntegration, EachMechanismRunsCleanWithPinnedFingerprint) {
  for (const auto& pin : kMechanismPins) {
    SCOPED_TRACE(pin.name);
    const auto r = run_mechanism(pin.mode);
    expect_clean_run(r);
    EXPECT_EQ(app::multi_result_fingerprint(r), pin.fingerprint)
        << pin.name << " drifted; refresh the pin if intentional";
  }
}

TEST(BaselineIntegration, MechanismsProduceDistinctOutcomes) {
  // The same workload under different AP mechanisms must not collapse to
  // the same trajectory — if two fingerprints collide, one mechanism is
  // not actually engaged on the TCP path.
  std::uint64_t fp[4];
  for (int i = 0; i < 4; ++i) {
    fp[i] = app::multi_result_fingerprint(run_mechanism(kMechanismPins[i].mode));
  }
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      EXPECT_NE(fp[i], fp[j])
          << kMechanismPins[i].name << " vs " << kMechanismPins[j].name;
    }
  }
}

TEST(BaselineIntegration, RunsAreDeterministic) {
  // Same spec, same seed: bitwise identical results (what the eval golden
  // anchors stand on).
  const auto a = run_mechanism(app::ApMode::kFastAck);
  const auto b = run_mechanism(app::ApMode::kFastAck);
  EXPECT_EQ(app::multi_result_fingerprint(a), app::multi_result_fingerprint(b));
}

}  // namespace
}  // namespace zhuge::baseline
