// Unit tests for the comparison baselines: FastAck (IMC '17) and the ABC
// router (NSDI '20).

#include <gtest/gtest.h>

#include "baseline/abc_router.hpp"
#include "baseline/fastack.hpp"

namespace zhuge::baseline {
namespace {

using net::Packet;
using sim::Duration;
using sim::TimePoint;
using namespace sim::literals;

TimePoint at(std::int64_t ms) { return TimePoint::zero() + Duration::millis(ms); }

Packet tcp_data(std::uint64_t seq, std::uint64_t end, std::uint64_t ts = 0) {
  Packet p;
  p.flow = net::FlowId{1, 2, 10, 20, 6};
  net::TcpHeader h;
  h.seq = seq;
  h.end_seq = end;
  h.ts_val = ts;
  p.header = h;
  return p;
}

TEST(FastAck, ForgesCumulativeAcks) {
  FastAck fa({});
  auto a1 = fa.on_wireless_delivered(tcp_data(0, 1200, 7), at(1), 100);
  ASSERT_TRUE(a1.has_value());
  EXPECT_TRUE(a1->tcp().is_ack);
  EXPECT_EQ(a1->tcp().ack, 1200u);
  EXPECT_EQ(a1->tcp().ts_echo, 7u);
  EXPECT_EQ(a1->flow, tcp_data(0, 0).flow.reversed());

  auto a2 = fa.on_wireless_delivered(tcp_data(1200, 2400), at(2), 101);
  ASSERT_TRUE(a2.has_value());
  EXPECT_EQ(a2->tcp().ack, 2400u);
}

TEST(FastAck, HandlesOutOfOrderDelivery) {
  FastAck fa({});
  auto a1 = fa.on_wireless_delivered(tcp_data(1200, 2400), at(1), 100);
  ASSERT_TRUE(a1.has_value());
  EXPECT_EQ(a1->tcp().ack, 0u);         // hole at the front
  EXPECT_EQ(a1->tcp().sack_upto, 2400u);
  auto a2 = fa.on_wireless_delivered(tcp_data(0, 1200), at(2), 101);
  ASSERT_TRUE(a2.has_value());
  EXPECT_EQ(a2->tcp().ack, 2400u);  // hole filled, prefix jumps
}

TEST(FastAck, IgnoresNonTcpPackets) {
  FastAck fa({});
  Packet rtp;
  rtp.header = net::RtpHeader{};
  EXPECT_FALSE(fa.on_wireless_delivered(rtp, at(1), 100).has_value());
}

TEST(FastAck, DropsClientPureAcks) {
  Packet ack;
  net::TcpHeader h;
  h.is_ack = true;
  ack.header = h;
  EXPECT_TRUE(FastAck::should_drop_uplink(ack));
  Packet data = tcp_data(0, 1200);
  EXPECT_FALSE(FastAck::should_drop_uplink(data));
}

TEST(AbcRouter, MarksAccelerateWhenUnderutilised) {
  AbcRouter router;
  // Dequeues at 10 Mbps, arrivals at 2 Mbps, empty queue: everything
  // should accelerate.
  std::int64_t t = 0;
  int accel = 0, total = 0;
  for (int i = 0; i < 400; ++i) {
    t += 1;
    router.on_dequeue(1250, at(t));  // 10 Mbps
    if (i % 5 == 0) {                // arrivals at 2 Mbps
      ++total;
      if (router.mark(1250, Duration::zero(), at(t)) == net::AbcMark::kAccelerate) {
        ++accel;
      }
    }
  }
  EXPECT_GT(accel, total * 8 / 10);
}

TEST(AbcRouter, BrakesUnderQueueDelay) {
  AbcRouter router;
  std::int64_t t = 0;
  // Arrivals match dequeues (10 Mbps) but a large standing queue delay
  // drives the target rate to zero: everything brakes.
  int brake = 0, total = 0;
  for (int i = 0; i < 400; ++i) {
    t += 1;
    router.on_dequeue(1250, at(t));
    ++total;
    if (router.mark(1250, 200_ms, at(t)) == net::AbcMark::kBrake) ++brake;
  }
  EXPECT_GT(brake, total * 9 / 10);
}

TEST(AbcRouter, MarkFractionTracksTargetOverCurrent) {
  AbcRouter::Config cfg;
  cfg.eta = 1.0;
  AbcRouter router(cfg);
  std::int64_t t = 0;
  // Dequeue rate 5 Mbps, arrival rate 10 Mbps, no queue delay: target/cr
  // = 0.5, so about half the packets should be accelerate.
  int accel = 0, total = 0;
  for (int i = 0; i < 2000; ++i) {
    t += 1;
    if (i % 2 == 0) router.on_dequeue(1250, at(t));  // 5 Mbps
    ++total;
    if (router.mark(1250, Duration::zero(), at(t)) == net::AbcMark::kAccelerate) {
      ++accel;
    }
  }
  const double frac = static_cast<double>(accel) / total;
  EXPECT_GT(frac, 0.35);
  EXPECT_LT(frac, 0.65);
}

}  // namespace
}  // namespace zhuge::baseline
