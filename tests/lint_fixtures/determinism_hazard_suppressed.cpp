// Fixture: unordered iteration silenced by suppression comments.
#include <cstdint>
#include <unordered_map>

struct Flows {
  std::unordered_map<std::uint64_t, double> table_;

  double sum() const {
    double s = 0.0;
    // zlint-allow(determinism-hazard): sum is order-independent
    for (const auto& [k, v] : table_) {
      s += v;
    }
    return s;
  }
};
