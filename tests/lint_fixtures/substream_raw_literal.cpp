// Fixture: known-bad rng-substream — raw integer literals as stream IDs.
// Both the declaration form and the make_unique form must trip.
#include "sim/random.hpp"

#include <memory>

namespace zhuge::trace {

inline double jitter(std::uint64_t seed) {
  sim::Rng rng(seed, 42);
  auto heap_rng = std::make_unique<sim::Rng>(seed, 43);
  return rng.next_double() + heap_rng->next_double();
}

}  // namespace zhuge::trace
