#pragma once
// Fixture: top of a transitive layer violation (analyzed as
// src/rtc/user.hpp). The direct edge rtc -> stats is legal; the harm is
// two hops down, where the stats header smuggles in a net header.
#include "stats/mid.hpp"

namespace zhuge::rtc {
struct User {
  stats::Mid mid;
};
}  // namespace zhuge::rtc
