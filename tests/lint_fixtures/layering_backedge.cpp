// Fixture: analyzed as src/queue/layering_backedge.cpp — the quoted
// includes below are never compiled, only lexed by zlint.
#include <cstdint>

#include "sim/time.hpp"        // downward edge: allowed for queue
#include "net/packet.hpp"      // downward edge: allowed for queue
#include "queue/qdisc.hpp"     // own layer: allowed
#include "core/zhuge.hpp"      // back-edge queue -> core: must trip
#include "app/scenario.hpp"    // upward skip into app: must trip
#include "tests/helpers.hpp"   // library may not include tests/: must trip

int unused() { return 0; }
