// Fixture: known-bad shared-mutable-state — a mutable namespace-scope
// variable and a non-const function-local static.
namespace zhuge::core {

int g_packets_seen = 0;

inline int bump() {
  static int calls = 0;
  return ++calls + g_packets_seen;
}

}  // namespace zhuge::core
