// Fixture: clean time-unit — same-unit arithmetic, int64 nanosecond
// accumulation, and an explicit conversion call at the unit boundary.
#include <cstdint>

namespace zhuge::net {

inline constexpr std::int64_t ms_to_ns(std::int64_t ms) {
  return ms * 1'000'000;
}

inline std::int64_t good_budget(std::int64_t rtt_ms, std::int64_t budget_ms,
                                std::int64_t step_ns, int rounds) {
  const std::int64_t margin_ms = budget_ms - rtt_ms;
  std::int64_t total_ns = 0;
  for (int i = 0; i < rounds; ++i) total_ns += step_ns;
  return ms_to_ns(margin_ms) + total_ns;
}

}  // namespace zhuge::net
