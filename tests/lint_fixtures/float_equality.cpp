// Fixture: exact floating-point comparison must trip; integer and
// pointer comparisons must not.
bool checks(double measured, int count, const double* maybe) {
  double target = 0.5;
  float scale = 2.0f;
  bool a = measured == target;   // declared-double vs declared-double: trips
  bool b = measured != 0.25;     // float literal operand: trips
  bool c = scale == 1.0f;        // float variable and literal: trips
  bool d = count == 3;           // integers: must NOT trip
  bool e = maybe != nullptr;     // pointer vs nullptr: must NOT trip
  return a || b || c || d || e;
}
