// Fixture: idiomatic, rule-abiding code — zlint must stay silent on this
// file under any src/ layer path.
#include <cstdint>
#include <map>
#include <vector>

#include "sim/random.hpp"

struct Table {
  std::map<std::uint64_t, double> values_;

  double total() const {
    double s = 0.0;
    for (const auto& [k, v] : values_) s += v;
    return s;
  }

  bool close(double a, double b) const {
    const double diff = a - b;
    return (diff < 0 ? -diff : diff) < 1e-9;
  }
};
