// Fixture: an own-line zlint-allow above a multi-line statement must cover
// diagnostics reported on the statement's *continuation* lines, not just
// the first line. Both `==` comparisons below sit on different lines of
// one statement; a single suppression covers the whole statement.
namespace zhuge::stats {

inline bool close_enough(double a, double b, double c) {
  // zlint-allow(float-equality): exact comparison intended; inputs are sums of small integers
  const bool eq = (a ==
                   b) &&
                  (b ==
                   c);
  return eq;
}

}  // namespace zhuge::stats
