// Fixture: the same banned calls as banned_api.cpp, every one silenced by
// a suppression comment (same-line and own-line forms both exercised).
#include <cstdlib>
#include <ctime>

int use_suppressed() {
  std::srand(42);  // zlint-allow(banned-api): fixture exercises same-line form
  // zlint-allow(banned-api): fixture exercises own-line form
  int a = std::rand();
  // zlint-allow(banned-api, determinism-hazard): multi-rule list form
  std::time_t t = time(nullptr);
  const char* home = std::getenv("X");  // zlint-allow(banned-api): reason here
  return a + static_cast<int>(t) + (home != nullptr);
}
