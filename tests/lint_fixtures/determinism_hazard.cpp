// Fixture: iteration over unordered containers must trip in
// result-affecting layers; lookups must not.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

struct Flows {
  std::unordered_map<std::uint64_t, double> table_;
  std::unordered_set<std::uint64_t> members_;

  double sum_by_iteration() const {
    double s = 0.0;
    for (const auto& [k, v] : table_) {  // range-for: must trip
      s += v;
    }
    for (auto it = members_.begin(); it != members_.end(); ++it) {  // must trip
      s += static_cast<double>(*it);
    }
    return s;
  }

  double lookup(std::uint64_t k) const {
    const auto it = table_.find(k);  // point lookup: must NOT trip
    return it == table_.end() ? 0.0 : it->second;
  }
};
