#pragma once
// Seeded known-bad registry for the CI self-test: the gating zlint job
// runs `zlint --project` over this directory and asserts a non-zero exit
// with an rng-substream collision diagnostic. If the analyzer regresses
// into silence, CI fails loudly instead of green-lighting a broken lint.
#include <cstdint>

namespace zhuge::sim::substreams {

inline constexpr std::uint64_t kSeededAlpha = 9;
inline constexpr std::uint64_t kSeededBeta = 9;  // collides with kSeededAlpha

}  // namespace zhuge::sim::substreams
