// Fixture: every banned-API rule target must trip exactly where noted.
// Analyzed by lint_test.cpp under a pretend src/ path.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int use_all() {
  std::srand(42);                                        // srand
  int a = std::rand();                                   // rand()
  std::random_device rd;                                 // random_device
  auto t1 = std::chrono::system_clock::now();            // system_clock
  auto t2 = std::chrono::steady_clock::now();            // steady_clock
  auto t3 = std::chrono::high_resolution_clock::now();   // high_resolution_clock
  std::time_t t = time(nullptr);                         // time()
  const char* home = std::getenv("HOME");                // getenv
  (void)rd;
  (void)t1;
  (void)t2;
  (void)t3;
  return a + static_cast<int>(t) + (home != nullptr);
}

struct Clock {
  int time_ = 0;
  int time() const { return time_; }  // member named time: must NOT trip
};

int member_call(const Clock& c) {
  return c.time();  // member access: must NOT trip
}
