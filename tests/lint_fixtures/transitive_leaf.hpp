#pragma once
// Fixture: bottom of the transitive chain (analyzed as src/net/leaf.hpp).
namespace zhuge::net {
struct Leaf {};
}  // namespace zhuge::net
