#pragma once
// Fixture: known-bad substream registry — two named constants share a
// value, so the two components draw correlated randomness.
#include <cstdint>

namespace zhuge::sim::substreams {

inline constexpr std::uint64_t kDemoTrace = 9;
inline constexpr std::uint64_t kDemoMedium = 17;
inline constexpr std::uint64_t kDemoChurn = 9;  // collides with kDemoTrace

}  // namespace zhuge::sim::substreams
