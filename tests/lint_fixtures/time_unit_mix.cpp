// Fixture: known-bad time-unit — (a) arithmetic mixing differently
// suffixed identifiers, (b) a double declared to carry nanoseconds,
// (c) float accumulation of an _ns value.
#include <cstdint>

namespace zhuge::net {

inline double bad_budget(std::int64_t rtt_ms, std::int64_t budget_s,
                         std::int64_t step_ns, int rounds) {
  const auto margin = budget_s - rtt_ms;
  double total_ns = 0.0;
  for (int i = 0; i < rounds; ++i) total_ns += step_ns;
  return static_cast<double>(margin) + total_ns;
}

}  // namespace zhuge::net
