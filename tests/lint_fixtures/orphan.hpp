#pragma once
// Fixture: a header no translation unit reaches (analyzed as
// src/net/orphan.hpp in a project set whose TU does not include it).
namespace zhuge::net {
struct Orphan {};
}  // namespace zhuge::net
