// Fixture: clean rng-substream — every construction names a registry
// constant (see substreams_ok.hpp, analyzed as src/sim/substreams.hpp).
#include "sim/random.hpp"
#include "sim/substreams.hpp"

#include <memory>

namespace zhuge::trace {

inline double jitter(std::uint64_t seed) {
  sim::Rng rng(seed, sim::substreams::kDemoTrace);
  auto heap_rng =
      std::make_unique<sim::Rng>(seed, sim::substreams::kDemoMedium);
  return rng.next_double() + heap_rng->next_double();
}

}  // namespace zhuge::trace
