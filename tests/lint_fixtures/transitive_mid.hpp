#pragma once
// Fixture: middle of the transitive chain (analyzed as
// src/stats/mid.hpp). The stats -> net edge is locally suppressed, so the
// per-edge include-layering rule stays silent — only the project-wide
// transitive pass can tell rtc it now reaches net.
// zlint-allow(include-layering): fixture models a locally-waived edge whose distant consumers the transitive pass must still catch
#include "net/leaf.hpp"

namespace zhuge::stats {
struct Mid {
  net::Leaf leaf;
};
}  // namespace zhuge::stats
