// Fixture: known-bad suppression hygiene — zlint-allow without a reason
// clause. The float-equality diagnostic is still silenced, but project
// mode reports the reasonless clause itself.
namespace zhuge::stats {

inline bool same(double a, double b) {
  // zlint-allow(float-equality)
  return a == b;
}

}  // namespace zhuge::stats
