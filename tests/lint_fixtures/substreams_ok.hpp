#pragma once
// Fixture: clean substream registry — analyzed under the pretend path
// src/sim/substreams.hpp. Distinct names, distinct values.
#include <cstdint>

namespace zhuge::sim::substreams {

/// Synthetic trace draws in the fixtures.
inline constexpr std::uint64_t kDemoTrace = 9;

/// Wireless medium contention draws in the fixtures.
inline constexpr std::uint64_t kDemoMedium = 17;

}  // namespace zhuge::sim::substreams
