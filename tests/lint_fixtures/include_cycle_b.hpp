#pragma once
// Fixture: other half of the include cycle (analyzed as
// src/net/cycle_b.hpp).
#include "net/cycle_a.hpp"

namespace zhuge::net {
struct CycleB {};
}  // namespace zhuge::net
