// Fixture: clean shared-mutable-state — constants, constexpr, and plain
// locals are all fine; only *mutable* namespace-scope / static-local
// state trips the rule.
namespace zhuge::core {

inline constexpr int kWindowLimit = 8;
const double kAlpha = 0.125;
static const char* const kName = "fixture";

struct Counter {
  int value = 0;  // mutable *member*: instance state, fine
};

inline int bump(int seed) {
  int calls = seed;  // plain local
  static const int kBase = 2;  // const static local
  constexpr int kStep = 3;
  Counter c{calls};
  return c.value + kBase + kStep + kWindowLimit;
}

}  // namespace zhuge::core
