#pragma once
// Fixture: half of a two-header include cycle (analyzed as
// src/net/cycle_a.hpp; the other half is include_cycle_b.hpp).
#include "net/cycle_b.hpp"

namespace zhuge::net {
struct CycleA {};
}  // namespace zhuge::net
