// Fixture: float equality silenced by a suppression comment.
bool exact_sentinel(double v) {
  // zlint-allow(float-equality): -1.0 is an exact sentinel, never computed
  return v == -1.0;
}
