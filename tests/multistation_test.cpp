// Integration tests for the multi-station scenario engine: determinism
// (repeat runs and serial-vs-parallel sweeps are bit-identical, including
// the 64-station churn acceptance spec), churn bookkeeping, per-station
// accounting, station quiesce, and AP-mode sensitivity.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "app/scenario.hpp"
#include "app/spec.hpp"
#include "app/sweep.hpp"

namespace zhuge::app {
namespace {

ScenarioSpec parse_or_die(const char* text) {
  std::string err;
  const auto spec = parse_scenario_spec(text, &err);
  EXPECT_TRUE(spec.has_value()) << err;
  return *spec;
}

/// Small mixed workload: 3 stations, RTP + TCP static flows, one mid-run
/// departure, light churn.
ScenarioSpec small_spec() {
  return parse_or_die(R"({
    "name": "small",
    "duration_s": 12,
    "warmup_s": 2,
    "seed": 5,
    "stations": [ { "count": 3, "mcs": 7 } ],
    "flows": [
      { "kind": "rtp_gcc", "station": 0, "zhuge": true },
      { "kind": "tcp_cubic", "station": 1, "start_s": 1, "stop_s": 8 },
      { "kind": "tcp_bbr", "station": 2, "start_s": 2 }
    ],
    "churn": {
      "enabled": true,
      "mean_interarrival_s": 1.5,
      "mean_lifetime_s": 4,
      "max_concurrent": 4,
      "mix_rtp_gcc": 1,
      "start_s": 2
    }
  })");
}

/// The acceptance-criterion spec: 64 stations with fade/FQ-CoDel/leaving
/// groups and a dense mixed churn process.
ScenarioSpec dense_spec() {
  return parse_or_die(R"({
    "name": "dense64",
    "duration_s": 15,
    "warmup_s": 3,
    "seed": 1,
    "stations": [
      { "count": 48, "mcs": 7 },
      { "count": 8, "mcs": 4,
        "fade": { "period_s": 4, "depth_mcs": 3, "duty": 0.3 } },
      { "count": 8, "mcs": 5, "qdisc": "fq_codel", "leave_s": 11 }
    ],
    "flows": [
      { "kind": "rtp_gcc", "station": 0, "zhuge": true },
      { "kind": "tcp_cubic", "station": 1, "start_s": 1 }
    ],
    "churn": {
      "enabled": true,
      "mean_interarrival_s": 0.3,
      "mean_lifetime_s": 5,
      "max_concurrent": 24,
      "mix_rtp_gcc": 0.6,
      "mix_tcp_cubic": 0.25,
      "mix_tcp_bbr": 0.15,
      "zhuge_fraction": 0.7,
      "start_s": 1,
      "max_bitrate_mbps": 1.5
    }
  })");
}

TEST(MultiStation, RepeatRunsBitIdentical) {
  const ScenarioSpec spec = small_spec();
  const ObsFreeze freeze;
  const auto a = run_multi_station(spec);
  const auto b = run_multi_station(spec);
  EXPECT_EQ(multi_result_fingerprint(a), multi_result_fingerprint(b));
  EXPECT_GT(a.events_executed, 0u);
}

TEST(MultiStation, SeedChangesOutcome) {
  const ScenarioSpec spec = small_spec();
  const ObsFreeze freeze;
  const auto a = run_multi_station(spec, 5);
  const auto b = run_multi_station(spec, 6);
  EXPECT_NE(multi_result_fingerprint(a), multi_result_fingerprint(b));
}

TEST(MultiStation, ChurnBookkeepingConsistent) {
  const ScenarioSpec spec = small_spec();
  const ObsFreeze freeze;
  const auto r = run_multi_station(spec);

  // Every scheduled flow arrived; departures are the flows whose window
  // closed before the run end.
  EXPECT_EQ(r.arrivals, r.flows.size());
  std::uint64_t expect_departures = 0;
  for (const auto& f : r.flows) {
    if (f.stop_s < spec.duration_s) ++expect_departures;
  }
  EXPECT_EQ(r.departures, expect_departures);
  EXPECT_GT(r.departures, 0u) << "spec should exercise mid-run teardown";

  // The RTP flow on station 0 actually moved video post-warmup.
  EXPECT_GT(r.flows[0].frames_decoded, 0u);
  EXPECT_GT(r.flows[0].goodput_bps, 0.0);
  EXPECT_GT(r.agg_network_rtt_ms.count(), 0u);
  EXPECT_FALSE(r.active_flows.points().empty());

  // Zhuge teardown contract, now under churn: nothing stranded, no
  // invariant tripped.
  EXPECT_EQ(r.stranded_acks, 0u);
  EXPECT_EQ(r.invariant_violations, 0u);
}

TEST(MultiStation, PerStationAccounting) {
  const ScenarioSpec spec = small_spec();
  const ObsFreeze freeze;
  const auto r = run_multi_station(spec);
  ASSERT_EQ(r.stations.size(), 3u);
  for (const auto& st : r.stations) {
    EXPECT_GE(st.airtime_s, 0.0);
    EXPECT_LT(st.airtime_s, spec.duration_s);
  }
  // Stations 0..2 all carried a static flow: airtime must be non-zero.
  EXPECT_GT(r.stations[0].airtime_s, 0.0);
  EXPECT_GT(r.stations[1].airtime_s, 0.0);
  EXPECT_GT(r.stations[2].airtime_s, 0.0);
  EXPECT_GT(r.stations[0].delivered_packets, 0u);
}

TEST(MultiStation, StationQuiesceBlackholesTraffic) {
  ScenarioSpec spec = parse_or_die(R"({
    "name": "quiesce",
    "duration_s": 12,
    "warmup_s": 2,
    "stations": [
      { "count": 1, "mcs": 7 },
      { "count": 1, "mcs": 7, "leave_s": 6 }
    ],
    "flows": [
      { "kind": "rtp_gcc", "station": 0, "zhuge": true },
      { "kind": "rtp_gcc", "station": 1, "zhuge": true }
    ]
  })");
  const ObsFreeze freeze;
  const auto r = run_multi_station(spec);
  // The sender keeps pushing at the quiesced station for 6 s; the AP must
  // black-hole those packets rather than queue or crash.
  EXPECT_GT(r.quiesced_drops, 0u);
  EXPECT_EQ(r.stranded_acks, 0u);
  EXPECT_EQ(r.invariant_violations, 0u);
  // Station 0 is unaffected and keeps decoding to the end.
  EXPECT_GT(r.flows[0].frames_decoded, r.flows[1].frames_decoded);
}

TEST(MultiStation, ApModeChangesOutcome) {
  ScenarioSpec spec = small_spec();
  const ObsFreeze freeze;
  spec.ap_mode = ApMode::kZhuge;
  const auto zhuge = run_multi_station(spec);
  spec.ap_mode = ApMode::kNone;
  const auto none = run_multi_station(spec);
  EXPECT_NE(multi_result_fingerprint(zhuge), multi_result_fingerprint(none));
}

TEST(MultiStation, Dense64StationSweepSerialEqualsEightThreads) {
  // The acceptance criterion: the 64-station churn spec, across seeds, is
  // bit-identical between --threads 1 and --threads 8.
  const ScenarioSpec spec = dense_spec();
  const auto grid = cross_spec_seeds(spec, {1, 2, 3});
  const auto parallel = run_spec_sweep(grid, {.threads = 8});
  const auto serial = run_spec_sweep(grid, {.threads = 1});
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(parallel[i].fingerprint, serial[i].fingerprint)
        << grid[i].name;
    EXPECT_GT(parallel[i].result.arrivals, 10u) << "churn too sparse";
    EXPECT_GT(parallel[i].result.departures, 0u);
    EXPECT_EQ(parallel[i].result.stranded_acks, 0u);
  }
  // Distinct seeds genuinely produce distinct workloads.
  EXPECT_NE(parallel[0].fingerprint, parallel[1].fingerprint);

  // Left-at-11s group (stations 56..63): the run must record their
  // departure as black-holed traffic somewhere across the seeds.
  std::uint64_t total_quiesced = 0;
  for (const auto& run : parallel) total_quiesced += run.result.quiesced_drops;
  EXPECT_GT(total_quiesced, 0u);
}

TEST(MultiStation, SpecSweepMetricsExport) {
  const ScenarioSpec spec = small_spec();
  const auto runs = run_spec_sweep(cross_spec_seeds(spec, {1, 2}), {});
  obs::Registry registry;
  export_spec_sweep_metrics(runs, registry);
  EXPECT_EQ(registry.counter("mssweep.total.runs").value(), 2u);
  EXPECT_GT(registry.counter("mssweep.small/s1.events").value(), 0u);
  EXPECT_GT(registry.gauge("mssweep.small/s2.active_flows_peak").value(), 0.0);
}

}  // namespace
}  // namespace zhuge::app
