// Tests for the declarative scenario-spec layer: the minimal JSON
// parser/serialiser, spec validation, and the deterministic flow-schedule
// expansion (draw-stability under max_concurrent skips included).

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "app/spec.hpp"
#include "prop.hpp"

namespace zhuge::app {
namespace {

// ---------------------------------------------------------------------------
// Json
// ---------------------------------------------------------------------------

TEST(Json, ParsesScalarsArraysObjects) {
  std::string err;
  const auto j = Json::parse(
      R"({"a": 1.5, "b": [true, null, "x\n"], "c": {"d": -3}})", &err);
  ASSERT_TRUE(j.has_value()) << err;
  EXPECT_DOUBLE_EQ(j->find("a")->number_or(0), 1.5);
  const auto& arr = j->find("b")->array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr[0].bool_or(false));
  EXPECT_EQ(arr[1].kind(), Json::Kind::kNull);
  EXPECT_EQ(arr[2].string_or(""), "x\n");
  EXPECT_DOUBLE_EQ(j->find("c")->find("d")->number_or(0), -3.0);
  EXPECT_EQ(j->find("missing"), nullptr);
}

TEST(Json, RejectsMalformedInputWithLineNumbers) {
  for (const char* bad : {"{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated",
                          "{\"a\":1} extra", "01", "\"\\u0041\""}) {
    std::string err;
    EXPECT_FALSE(Json::parse(bad, &err).has_value()) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
  std::string err;
  EXPECT_FALSE(Json::parse("{\n  \"a\": 1,\n  !\n}", &err).has_value());
  EXPECT_NE(err.find("line 3"), std::string::npos) << err;
}

TEST(Json, DumpParseRoundTrip) {
  Json doc = Json::make_object();
  doc.set("name", Json::make_string("round \"trip\"\n"));
  doc.set("value", Json::make_number(0.1));
  doc.set("count", Json::make_number(48));
  Json arr = Json::make_array();
  arr.push(Json::make_bool(true));
  arr.push(Json::make_number(-2.5e-9));
  doc.set("items", std::move(arr));

  for (const int indent : {0, 2}) {
    std::string err;
    const auto back = Json::parse(doc.dump(indent), &err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(back->find("name")->string_or(""), "round \"trip\"\n");
    EXPECT_DOUBLE_EQ(back->find("value")->number_or(0), 0.1);
    EXPECT_DOUBLE_EQ(back->find("count")->number_or(0), 48.0);
    EXPECT_DOUBLE_EQ(back->find("items")->array()[1].number_or(0), -2.5e-9);
  }
}

TEST(Json, RandomDoublesSurviveRoundTrip) {
  prop::for_all({.iterations = 100}, [](sim::Rng& rng, int) {
    const double v = rng.uniform(-1e12, 1e12) *
                     (rng.chance(0.5) ? 1.0 : 1e-9);
    Json doc = Json::make_object();
    doc.set("v", Json::make_number(v));
    std::string err;
    const auto back = Json::parse(doc.dump(), &err);
    ASSERT_TRUE(back.has_value()) << err;
    // %.17g + from_chars must round-trip doubles bit-exactly.
    EXPECT_EQ(back->find("v")->number_or(0), v);
  });
}

// ---------------------------------------------------------------------------
// ScenarioSpec parsing
// ---------------------------------------------------------------------------

constexpr const char* kMinimalSpec = R"({
  "name": "t",
  "duration_s": 10,
  "stations": [ { "count": 3, "mcs": 5 } ],
  "flows": [ { "kind": "rtp_gcc", "station": 2, "zhuge": true } ]
})";

TEST(ScenarioSpecParse, MinimalSpec) {
  std::string err;
  const auto spec = parse_scenario_spec(kMinimalSpec, &err);
  ASSERT_TRUE(spec.has_value()) << err;
  EXPECT_EQ(spec->name, "t");
  EXPECT_EQ(spec->station_count(), 3);
  EXPECT_EQ(spec->station_group(2).mcs, 5);
  ASSERT_EQ(spec->flows.size(), 1u);
  EXPECT_EQ(spec->flows[0].kind, SpecFlowKind::kRtpGcc);
  EXPECT_TRUE(spec->flows[0].zhuge);
  EXPECT_FALSE(spec->churn.enabled);
}

TEST(ScenarioSpecParse, RejectsStructuralErrors) {
  const char* bad[] = {
      R"({"stations": []})",                                    // no stations
      R"({"stations": [{"count": 0}]})",                        // bad count
      R"({"stations": [{"mcs": 9}]})",                          // bad MCS
      R"({"stations": [{}], "flows": [{"station": 5}]})",       // OOB station
      R"({"stations": [{}], "flows": [{"kind": "quic"}]})",     // bad kind
      R"({"stations": [{"qdisc": "red"}]})",                    // bad qdisc
      R"({"stations": [{}], "ap_mode": "turbo"})",              // bad mode
      R"({"stations": [{}], "duration_s": 0})",                 // bad duration
      R"({"stations": [{}], "warmup_s": 99})",                  // warmup >= dur
      R"({"stations": [{}], "churn": {"enabled": true,
          "mix_rtp_gcc": 0, "mix_tcp_cubic": 0, "mix_tcp_bbr": 0}})",
  };
  for (const char* text : bad) {
    std::string err;
    EXPECT_FALSE(parse_scenario_spec(text, &err).has_value()) << text;
    EXPECT_FALSE(err.empty()) << text;
  }
}

TEST(ScenarioSpecParse, UnknownKeysIgnoredForwardCompat) {
  std::string err;
  const auto spec = parse_scenario_spec(
      R"({"stations": [{"count": 1, "future_knob": 3}], "new_top": {}})",
      &err);
  ASSERT_TRUE(spec.has_value()) << err;
  EXPECT_EQ(spec->station_count(), 1);
}

// ---------------------------------------------------------------------------
// expand_flow_schedule
// ---------------------------------------------------------------------------

ScenarioSpec churn_spec() {
  ScenarioSpec spec;
  spec.duration_s = 40.0;
  spec.warmup_s = 2.0;
  spec.stations.push_back(StationGroupSpec{.count = 8});
  SpecFlow f;
  f.kind = SpecFlowKind::kTcpCubic;
  spec.flows.push_back(f);
  spec.churn.enabled = true;
  spec.churn.mean_interarrival_s = 0.5;
  spec.churn.mean_lifetime_s = 5.0;
  spec.churn.max_concurrent = 6;
  spec.churn.mix_rtp_gcc = 0.5;
  spec.churn.mix_tcp_cubic = 0.3;
  spec.churn.mix_tcp_bbr = 0.2;
  spec.churn.zhuge_fraction = 0.5;
  return spec;
}

TEST(FlowSchedule, DeterministicAndSeedSensitive) {
  const ScenarioSpec spec = churn_spec();
  const auto a = expand_flow_schedule(spec, 3);
  const auto b = expand_flow_schedule(spec, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].station, b[i].station);
    EXPECT_EQ(a[i].zhuge, b[i].zhuge);
    EXPECT_EQ(a[i].start_s, b[i].start_s);
    EXPECT_EQ(a[i].stop_s, b[i].stop_s);
  }
  const auto c = expand_flow_schedule(spec, 4);
  EXPECT_NE(a.size(), 1u);  // churn actually produced arrivals
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].start_s != c[i].start_s;
  }
  EXPECT_TRUE(differs) << "seed change produced an identical schedule";
}

TEST(FlowSchedule, RespectsInvariants) {
  const ScenarioSpec spec = churn_spec();
  prop::for_all({.iterations = 25}, [&spec](sim::Rng& rng, int) {
    const std::uint64_t seed = rng.next_u32();
    const auto schedule = expand_flow_schedule(spec, seed);
    ASSERT_FALSE(schedule.empty());
    std::set<std::uint32_t> indices;
    for (const auto& ev : schedule) {
      EXPECT_TRUE(indices.insert(ev.index).second) << "duplicate index";
      EXPECT_GE(ev.start_s, 0.0);
      EXPECT_GT(ev.stop_s, ev.start_s);
      EXPECT_LE(ev.stop_s, spec.duration_s);
      EXPECT_GE(ev.station, 0);
      EXPECT_LT(ev.station, spec.station_count());
      if (ev.kind != SpecFlowKind::kRtpGcc) {
        EXPECT_FALSE(ev.zhuge);
      }
    }
    // max_concurrent: at every arrival instant, the number of admitted
    // flows whose window contains it stays within the cap (+1: the
    // static flow is not subject to the churn cap).
    for (const auto& ev : schedule) {
      int live = 0;
      for (const auto& other : schedule) {
        if (other.start_s <= ev.start_s && ev.start_s < other.stop_s) ++live;
      }
      EXPECT_LE(live, spec.churn.max_concurrent + 1)
          << "cap violated at t=" << ev.start_s;
    }
  });
}

TEST(FlowSchedule, StaticFlowsComeFirstAndClampToRun) {
  ScenarioSpec spec;
  spec.duration_s = 10.0;
  spec.stations.push_back(StationGroupSpec{.count = 1});
  SpecFlow f;
  f.start_s = 2.0;
  f.stop_s = 99.0;  // clamps to duration
  spec.flows.push_back(f);
  SpecFlow g;
  g.start_s = 4.0;
  g.stop_s = 6.0;
  spec.flows.push_back(g);
  const auto schedule = expand_flow_schedule(spec, 1);
  ASSERT_EQ(schedule.size(), 2u);
  EXPECT_EQ(schedule[0].index, 0u);
  EXPECT_DOUBLE_EQ(schedule[0].start_s, 2.0);
  EXPECT_DOUBLE_EQ(schedule[0].stop_s, 10.0);
  EXPECT_DOUBLE_EQ(schedule[1].stop_s, 6.0);
}

// ---------------------------------------------------------------------------
// Known-bad fixtures: one file per strict-validation rejection path
// ---------------------------------------------------------------------------

// The feedback-fault and ladder sections are validated strictly (a typo
// would silently run a *clean* scenario while claiming chaos coverage), so
// every rejection path gets a checked-in fixture pinning both the message
// and the "line N:" source anchor a user needs to find the mistake.
TEST(ScenarioSpecParse, KnownBadFixturesRejectWithLineNumbers) {
  struct Case {
    const char* file;
    const char* expect;  ///< full parse error, line prefix included
  };
  const Case cases[] = {
      {"fault_unknown_key.json",
       "line 6: feedback_faults.ap_feedback: unknown key \"los_prob\""},
      {"fault_value_not_number.json",
       "line 6: feedback_faults.ap_feedback: \"loss_prob\" must be a number"},
      {"fault_prob_out_of_range.json",
       "line 6: feedback_faults.uplink_rtcp: \"loss_prob\" must be in [0, 1]"},
      {"fault_negative_delay.json",
       "line 6: feedback_faults.ap_feedback: \"spike_delay_ms\" must be >= 0"},
      {"fault_negative_start.json",
       "line 6: feedback_faults.uplink_rtcp: \"start_s\" must be >= 0"},
      {"fault_window_inverted.json",
       "line 6: feedback_faults.uplink_rtcp: \"end_s\" must be > start_s"},
      {"fault_unknown_boundary.json",
       "line 6: feedback_faults: unknown key \"client_rtcp\" "
       "(expected ap_feedback|uplink_rtcp)"},
      {"fault_section_not_object.json",
       "line 5: \"feedback_faults\" must be an object"},
      {"fault_boundary_not_object.json",
       "line 6: feedback_faults.ap_feedback: must be an object"},
      {"ladder_unknown_level.json",
       "line 5: zhuge_initial_ladder must be "
       "full|clamped_predict|hold_only|pass_through"},
  };
  for (const auto& c : cases) {
    const std::string path =
        std::string(ZHUGE_SPEC_FIXTURE_DIR) + "/" + c.file;
    std::string err;
    const auto spec = load_scenario_spec(path, &err);
    EXPECT_FALSE(spec.has_value()) << c.file;
    // load_scenario_spec prefixes the path; the rest must match exactly.
    EXPECT_EQ(err, path + ": " + c.expect) << c.file;
  }
}

}  // namespace
}  // namespace zhuge::app
