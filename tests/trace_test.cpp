// Unit tests for the trace module: containers, CSV round-trips, synthetic
// generators and the Fig. 3(b) ABW-reduction analysis.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "trace/synthetic.hpp"
#include "trace/trace.hpp"

namespace zhuge::trace {
namespace {

using sim::Duration;
using sim::TimePoint;
using namespace sim::literals;

TEST(Trace, ConstantTrace) {
  const Trace t = constant_trace(10e6, 10_s);
  EXPECT_DOUBLE_EQ(t.rate_at(TimePoint::zero()), 10e6);
  EXPECT_DOUBLE_EQ(t.rate_at(TimePoint::zero() + 5_s), 10e6);
  EXPECT_DOUBLE_EQ(t.mean_rate_bps(), 10e6);
}

TEST(Trace, StepTraceSwitchesAtBoundary) {
  const Trace t = step_trace(30e6, 3e6, 10_s, 20_s);
  EXPECT_DOUBLE_EQ(t.rate_at(TimePoint::zero() + 9_s), 30e6);
  EXPECT_DOUBLE_EQ(t.rate_at(TimePoint::zero() + 10_s), 3e6);
  EXPECT_DOUBLE_EQ(t.rate_at(TimePoint::zero() + 19_s), 3e6);
}

TEST(Trace, SampleAndHoldBetweenSamples) {
  std::vector<Trace::Sample> s = {
      {TimePoint::zero(), 1e6},
      {TimePoint::zero() + 100_ms, 2e6},
      {TimePoint::zero() + 200_ms, 3e6},
  };
  const Trace t("t", std::move(s));
  EXPECT_DOUBLE_EQ(t.rate_at(TimePoint::zero() + 50_ms), 1e6);
  EXPECT_DOUBLE_EQ(t.rate_at(TimePoint::zero() + 150_ms), 2e6);
  EXPECT_DOUBLE_EQ(t.rate_at(TimePoint::zero() + 250_ms), 3e6);
}

TEST(Trace, LoopsPastEnd) {
  std::vector<Trace::Sample> s = {
      {TimePoint::zero(), 1e6},
      {TimePoint::zero() + 100_ms, 2e6},
  };
  const Trace t("t", std::move(s));
  // span = 200 ms; t=210ms wraps to 10ms -> first sample.
  EXPECT_DOUBLE_EQ(t.rate_at(TimePoint::zero() + 210_ms), 1e6);
  EXPECT_DOUBLE_EQ(t.rate_at(TimePoint::zero() + 310_ms), 2e6);
}

TEST(Trace, EmptyIsSafe) {
  const Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(t.rate_at(TimePoint::zero()), 0.0);
}

TEST(TraceCsv, RoundTrip) {
  const Trace out = make_trace(TraceKind::kOfficeWifi, 3, 2_s);
  const std::string path = "/tmp/zhuge_trace_test.csv";
  save_csv(out, path);
  const Trace in = load_csv(path, "reload");
  ASSERT_EQ(in.samples().size(), out.samples().size());
  for (std::size_t i = 0; i < in.samples().size(); ++i) {
    EXPECT_NEAR(in.samples()[i].rate_bps, out.samples()[i].rate_bps,
                out.samples()[i].rate_bps * 1e-6);
    EXPECT_NEAR(in.samples()[i].t.to_millis(), out.samples()[i].t.to_millis(), 1e-3);
  }
  std::filesystem::remove(path);
}

TEST(TraceCsv, RejectsMissingFile) {
  EXPECT_THROW(load_csv("/nonexistent/file.csv"), std::runtime_error);
}

TEST(TraceCsv, RejectsMalformedLine) {
  const std::string path = "/tmp/zhuge_trace_bad.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("0,1.0\nnot a line\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(load_csv(path), std::runtime_error);
  std::filesystem::remove(path);
}

/// Write `content` to a temp CSV and return the load_csv error message
/// (empty string when it unexpectedly loads).
std::string csv_error(const std::string& content) {
  const std::string path = "/tmp/zhuge_trace_diag.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs(content.c_str(), f);
    std::fclose(f);
  }
  std::string msg;
  try {
    (void)load_csv(path);
  } catch (const std::runtime_error& e) {
    msg = e.what();
  }
  std::filesystem::remove(path);
  return msg;
}

TEST(TraceCsv, MalformedLineErrorNamesFileLineAndToken) {
  const std::string msg = csv_error("0,1.0\ngarbage here\n2,3.0\n");
  EXPECT_NE(msg.find("zhuge_trace_diag.csv:2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("garbage here"), std::string::npos) << msg;
}

TEST(TraceCsv, TrailingTokenRejectedWithDetail) {
  const std::string msg = csv_error("0,1.0 extra\n");
  EXPECT_NE(msg.find(":1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("trailing token \"extra\""), std::string::npos) << msg;
}

TEST(TraceCsv, NonFiniteValueRejected) {
  const std::string msg = csv_error("0,1.0\n1,nan\n");
  EXPECT_NE(msg.find(":2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("non-finite"), std::string::npos) << msg;
}

TEST(TraceCsv, NegativeRateRejected) {
  const std::string msg = csv_error("0,-5\n");
  EXPECT_NE(msg.find("negative rate"), std::string::npos) << msg;
}

TEST(TraceCsv, BackwardsTimeRejected) {
  const std::string msg = csv_error("0,1.0\n100,2.0\n50,3.0\n");
  EXPECT_NE(msg.find(":3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("backwards"), std::string::npos) << msg;
}

TEST(TraceCsv, LongOffendingLineIsTruncatedInMessage) {
  const std::string msg = csv_error("0,1.0\n" + std::string(500, 'x') + "\n");
  EXPECT_NE(msg.find("..."), std::string::npos) << msg;
  EXPECT_LT(msg.size(), 250u);  // excerpt capped, not the whole line
}

TEST(TraceCsv, CommentsAndBlankLinesStillSkipped) {
  const std::string path = "/tmp/zhuge_trace_ok.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("# header\n\n0,1.0\n# mid comment\n100,2.0\n", f);
    std::fclose(f);
  }
  const Trace t = load_csv(path);
  EXPECT_EQ(t.samples().size(), 2u);
  std::filesystem::remove(path);
}

TEST(Synthetic, DeterministicInSeed) {
  const Trace a = make_trace(TraceKind::kRestaurantWifi, 5, 10_s);
  const Trace b = make_trace(TraceKind::kRestaurantWifi, 5, 10_s);
  const Trace c = make_trace(TraceKind::kRestaurantWifi, 6, 10_s);
  ASSERT_EQ(a.samples().size(), b.samples().size());
  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples()[i].rate_bps, b.samples()[i].rate_bps);
  }
  bool any_diff = false;
  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    if (a.samples()[i].rate_bps != c.samples()[i].rate_bps) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

class SyntheticKindTest : public ::testing::TestWithParam<TraceKind> {};

TEST_P(SyntheticKindTest, MeanNearConfiguredAndBounded) {
  const TraceKind kind = GetParam();
  const SyntheticParams p = params_for(kind);
  const Trace t = make_trace(kind, 11, Duration::seconds(300));
  // Mean within 30% of the configured mean (fades drag it down a little).
  EXPECT_GT(t.mean_rate_bps(), 0.55 * p.mean_bps);
  EXPECT_LT(t.mean_rate_bps(), 1.3 * p.mean_bps);
  for (const auto& s : t.samples()) {
    EXPECT_GE(s.rate_bps, p.mean_bps * p.floor_ratio * 0.999);
    EXPECT_LE(s.rate_bps, p.mean_bps * p.ceil_ratio * 1.001);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SyntheticKindTest,
    ::testing::Values(TraceKind::kRestaurantWifi, TraceKind::kOfficeWifi,
                      TraceKind::kIndoorMixed45G, TraceKind::kCity4G,
                      TraceKind::kCity5G, TraceKind::kEthernet,
                      TraceKind::kLegacyCellular));

TEST(Synthetic, NamesAreStable) {
  EXPECT_STREQ(short_name(TraceKind::kRestaurantWifi), "W1");
  EXPECT_STREQ(short_name(TraceKind::kCity5G), "C3");
  EXPECT_STREQ(short_name(TraceKind::kEthernet), "ETH");
  EXPECT_STREQ(long_name(TraceKind::kOfficeWifi), "Office WiFi (5GHz)");
}

TEST(AbwReduction, WirelessHasHeavierDropTailThanWired) {
  const Duration len = Duration::seconds(600);
  const auto wifi = abw_reduction_stats(make_trace(TraceKind::kRestaurantWifi, 4, len));
  const auto eth = abw_reduction_stats(make_trace(TraceKind::kEthernet, 4, len));
  // Paper Fig. 3(b): P[reduction > 10x] is 0.6-7.3% for wireless and
  // < 0.1% for wired.
  EXPECT_GT(wifi.fraction_above(10.0), 0.002);
  EXPECT_LT(eth.fraction_above(10.0), 0.001);
  EXPECT_LT(eth.fraction_above(2.0), 0.01);
}

TEST(AbwReduction, FractionAboveIsMonotone) {
  const auto s = abw_reduction_stats(
      make_trace(TraceKind::kIndoorMixed45G, 9, Duration::seconds(300)));
  double prev = 1.0;
  for (double k : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    const double f = s.fraction_above(k);
    EXPECT_LE(f, prev);
    prev = f;
  }
}

TEST(AbwReduction, StepTraceHasExactlyOneBigDrop) {
  const Trace t = step_trace(30e6, 3e6, 10_s, 20_s);
  const auto s = abw_reduction_stats(t);
  int big = 0;
  for (double r : s.reduction_ratios) {
    if (r > 5.0) ++big;
  }
  EXPECT_EQ(big, 1);
}

}  // namespace
}  // namespace zhuge::trace
