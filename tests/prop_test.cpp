// Randomized invariant tests (tests/prop.hpp harness) for the core
// primitives whose correctness everything else leans on:
//  * FortuneTeller Eq. 1 — qSize = max(bytes - maxBurstSize, 0) is never
//    negative and qLong is monotone in the queue depth;
//  * SeqUnwrapper — round-trips arbitrary 16-bit walks whose true step
//    stays within the +-32768 disambiguation window;
//  * AckScheduler — never reorders held feedback under random hold deltas
//    and random retreats;
//  * synthetic ABW traces — seed-determinism, class rate envelopes, and
//    rate_at() piecewise/sample-and-hold consistency (the eval matrix's
//    trace axis leans on all three).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/ack_scheduler.hpp"
#include "core/fortune_teller.hpp"
#include "net/packet.hpp"
#include "net/seq.hpp"
#include "prop.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"

namespace zhuge {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint at_ms(double ms) {
  return TimePoint::zero() + Duration::from_seconds(ms / 1e3);
}

// ---------------------------------------------------------------------------
// FortuneTeller
// ---------------------------------------------------------------------------

TEST(PropFortuneTeller, QLongNeverNegativeAndClampedByBurst) {
  prop::for_all([](sim::Rng& rng, int) {
    core::FortuneTeller teller;
    double now_ms = 0.0;
    // Random dequeue history: bursts of 1..4 MPDUs, gaps 0.1..30 ms.
    const int departures = static_cast<int>(rng.uniform_int(40)) + 1;
    for (int i = 0; i < departures; ++i) {
      now_ms += rng.uniform(0.1, 30.0);
      const int in_burst = static_cast<int>(rng.uniform_int(4)) + 1;
      for (int k = 0; k < in_burst; ++k) {
        teller.on_dequeue(static_cast<std::int64_t>(rng.uniform_int(1501)),
                          at_ms(now_ms), rng.chance(0.2));
      }
    }
    const TimePoint now = at_ms(now_ms + rng.uniform(0.0, 5.0));
    const std::int64_t queue_bytes =
        static_cast<std::int64_t>(rng.uniform_int(400'000));
    const auto pred = teller.predict(now, queue_bytes, std::nullopt);
    // Eq. 1's max(..., 0): no queue depth may ever predict negative delay.
    EXPECT_GE(pred.q_long, Duration::zero());
    EXPECT_GE(pred.total(), Duration::zero());
    // Bytes at or below maxBurstSize are one aggregate in flight, not
    // queue build-up: qLong must clamp to exactly zero there.
    if (queue_bytes <= teller.max_burst_bytes(now)) {
      EXPECT_EQ(pred.q_long, Duration::zero());
    }
  });
}

TEST(PropFortuneTeller, QLongMonotoneInQueueDepth) {
  prop::for_all([](sim::Rng& rng, int) {
    core::FortuneTeller teller;
    double now_ms = 0.0;
    const int departures = static_cast<int>(rng.uniform_int(30)) + 5;
    for (int i = 0; i < departures; ++i) {
      now_ms += rng.uniform(0.5, 10.0);
      teller.on_dequeue(static_cast<std::int64_t>(rng.uniform_int(1501)),
                        at_ms(now_ms), rng.chance(0.3));
    }
    const TimePoint now = at_ms(now_ms + 1.0);
    const auto a = static_cast<std::int64_t>(rng.uniform_int(200'000));
    const auto b = a + static_cast<std::int64_t>(rng.uniform_int(200'000));
    // Same teller state, same instant: deeper queue, never smaller qLong.
    const auto pa = teller.predict(now, a, std::nullopt);
    const auto pb = teller.predict(now, b, std::nullopt);
    EXPECT_LE(pa.q_long, pb.q_long)
        << "qLong(" << a << " B) > qLong(" << b << " B)";
  });
}

// ---------------------------------------------------------------------------
// SeqUnwrapper
// ---------------------------------------------------------------------------

TEST(PropSeqUnwrapper, RoundTripsRandomWalks) {
  prop::for_all([](sim::Rng& rng, int) {
    net::SeqUnwrapper unwrapper;
    // Anchor anywhere on the wire; the unwrapper adopts the first value.
    std::int64_t true_seq =
        static_cast<std::int64_t>(rng.uniform_int(0x10000));
    ASSERT_EQ(unwrapper.unwrap(static_cast<std::uint16_t>(true_seq)),
              true_seq);
    const int steps = static_cast<int>(rng.uniform_int(300)) + 1;
    for (int i = 0; i < steps; ++i) {
      // Any step the uint16 disambiguation window can represent:
      // backward up to 32767 (reordering), forward up to 32768 (loss
      // bursts; +0x8000 exactly is pinned to forward).
      const std::int64_t delta =
          static_cast<std::int64_t>(rng.uniform_int(0x10000)) - 0x7FFF;
      true_seq += delta;
      const auto wire = static_cast<std::uint16_t>(true_seq & 0xFFFF);
      const std::int64_t got = unwrapper.unwrap(wire);
      ASSERT_EQ(got, true_seq)
          << "step " << i << " delta " << delta << " wire " << wire;
      ASSERT_EQ(static_cast<std::uint16_t>(got & 0xFFFF), wire);
    }
  });
}

// ---------------------------------------------------------------------------
// AckScheduler
// ---------------------------------------------------------------------------

TEST(PropAckScheduler, NeverReordersUnderRandomHoldsAndRetreats) {
  prop::for_all([](sim::Rng& rng, int) {
    sim::Simulator sim;
    std::vector<std::uint64_t> released;
    core::AckScheduler sched(sim, [&released](net::Packet p) {
      released.push_back(p.uid);
    });

    // Random schedule: 1..60 holds at random instants, each held for a
    // random delta past the previous release (the updater's
    // order-preserving floor), with random retreats interleaved.
    const int holds = static_cast<int>(rng.uniform_int(60)) + 1;
    double t_ms = 0.0;
    std::uint64_t next_uid = 1;
    for (int i = 0; i < holds; ++i) {
      t_ms += rng.uniform(0.0, 8.0);
      const double hold_ms = rng.uniform(0.0, 50.0);
      sim.schedule_at(at_ms(t_ms), [&sched, &sim, uid = next_uid, hold_ms] {
        net::Packet p;
        p.uid = uid;
        const TimePoint release = std::max(
            sched.last_release(sim.now()),
            sim.now() + Duration::from_seconds(hold_ms / 1e3));
        sched.hold(std::move(p), release);
      });
      ++next_uid;
      if (rng.chance(0.3)) {
        const double retreat_ms = rng.uniform(0.0, 30.0);
        sim.schedule_at(at_ms(t_ms + rng.uniform(0.0, 5.0)),
                        [&sched, retreat_ms] {
                          sched.retreat(
                              Duration::from_seconds(retreat_ms / 1e3));
                        });
      }
    }
    sim.run_until(at_ms(t_ms + 200.0));
    sched.flush();

    ASSERT_EQ(released.size(), static_cast<std::size_t>(holds));
    // Release order must equal hold order — uids were issued 1..N.
    EXPECT_TRUE(std::is_sorted(released.begin(), released.end()))
        << "feedback reordered";
  });
}

// ---------------------------------------------------------------------------
// Synthetic ABW traces (the eval matrix's W1/W2/C1-C3 axis)
// ---------------------------------------------------------------------------

constexpr trace::TraceKind kWirelessClasses[] = {
    trace::TraceKind::kRestaurantWifi, trace::TraceKind::kOfficeWifi,
    trace::TraceKind::kIndoorMixed45G, trace::TraceKind::kCity4G,
    trace::TraceKind::kCity5G};

TEST(PropSyntheticTrace, DeterministicInKindAndSeed) {
  prop::for_all(prop::Config{.iterations = 40}, [](sim::Rng& rng, int) {
    const auto kind = kWirelessClasses[rng.uniform_int(5)];
    const auto seed = rng.uniform_int(1'000'000);
    const auto dur = sim::Duration::from_seconds(rng.uniform(1.0, 20.0));
    const trace::Trace a = trace::make_trace(kind, seed, dur);
    const trace::Trace b = trace::make_trace(kind, seed, dur);
    ASSERT_EQ(a.samples().size(), b.samples().size());
    for (std::size_t i = 0; i < a.samples().size(); ++i) {
      // Bitwise, not approximate: the eval fingerprints depend on it.
      ASSERT_EQ(a.samples()[i].t, b.samples()[i].t) << "sample " << i;
      ASSERT_EQ(a.samples()[i].rate_bps, b.samples()[i].rate_bps)
          << "sample " << i;
    }
    // A different seed must produce a different trace (same length), or
    // dense station groups would fade in lockstep.
    const trace::Trace c = trace::make_trace(kind, seed + 1, dur);
    ASSERT_EQ(a.samples().size(), c.samples().size());
    bool any_diff = false;
    for (std::size_t i = 0; i < a.samples().size(); ++i) {
      any_diff = any_diff || a.samples()[i].rate_bps != c.samples()[i].rate_bps;
    }
    EXPECT_TRUE(any_diff) << trace::short_name(kind)
                          << ": seed does not perturb the trace";
  });
}

TEST(PropSyntheticTrace, RatesStayInsideClassEnvelope) {
  prop::for_all(prop::Config{.iterations = 40}, [](sim::Rng& rng, int) {
    const auto kind = kWirelessClasses[rng.uniform_int(5)];
    const auto params = trace::params_for(kind);
    const auto dur = sim::Duration::from_seconds(rng.uniform(5.0, 30.0));
    const trace::Trace t =
        trace::make_trace(kind, rng.uniform_int(1'000'000), dur);
    ASSERT_FALSE(t.empty());
    // Documented generator envelope: mean*floor_ratio .. mean*ceil_ratio.
    const double lo = params.mean_bps * params.floor_ratio;
    const double hi = params.mean_bps * params.ceil_ratio;
    for (const auto& s : t.samples()) {
      ASSERT_GE(s.rate_bps, lo) << trace::short_name(kind);
      ASSERT_LE(s.rate_bps, hi) << trace::short_name(kind);
    }
    // The long-run mean should sit well inside the envelope: within 3x of
    // the class mean either way (the AR(1) process is mean-reverting; the
    // fades only pull downward).
    EXPECT_LE(t.mean_rate_bps(), params.mean_bps * 3.0);
    EXPECT_GE(t.mean_rate_bps(), params.mean_bps / 3.0);
    // Uniform sample spacing at the documented step.
    for (std::size_t i = 1; i < t.samples().size(); ++i) {
      ASSERT_EQ(t.samples()[i].t - t.samples()[i - 1].t, params.step);
    }
  });
}

TEST(PropSyntheticTrace, RateAtMatchesSampleAndHold) {
  prop::for_all(prop::Config{.iterations = 40}, [](sim::Rng& rng, int) {
    const auto kind = kWirelessClasses[rng.uniform_int(5)];
    const auto dur = sim::Duration::from_seconds(rng.uniform(2.0, 10.0));
    const trace::Trace t =
        trace::make_trace(kind, rng.uniform_int(1'000'000), dur);
    ASSERT_GE(t.samples().size(), 2u);
    const std::int64_t span_ns = t.span().count_ns();
    ASSERT_GT(span_ns, 0);
    for (int q = 0; q < 50; ++q) {
      // Query up to 3 spans out so the loop path is exercised too.
      const std::int64_t ns = static_cast<std::int64_t>(
          rng.uniform(0.0, 3.0 * static_cast<double>(span_ns)));
      const TimePoint at{ns};
      // Reference: last sample at or before the wrapped instant.
      const TimePoint wrapped{ns % span_ns};
      double expect = t.samples().front().rate_bps;
      for (const auto& s : t.samples()) {
        if (s.t <= wrapped) expect = s.rate_bps;
      }
      ASSERT_EQ(t.rate_at(at), expect) << "query " << ns << " ns";
      // Looping: one whole span later is bitwise the same rate.
      ASSERT_EQ(t.rate_at(at), t.rate_at(TimePoint{ns + span_ns}));
    }
  });
}

}  // namespace
}  // namespace zhuge
