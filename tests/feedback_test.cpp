// Unit and property tests for the Zhuge Feedback Updater (§5.2, §5.3):
// delta history + tokens + conservation for out-of-band ACK delaying, the
// retreatable release queue, and in-band TWCC construction.

#include <gtest/gtest.h>

#include <vector>

#include "core/ack_scheduler.hpp"
#include "core/feedback_inband.hpp"
#include "core/feedback_oob.hpp"
#include "core/zhuge.hpp"
#include "queue/fifo.hpp"
#include "sim/simulator.hpp"

namespace zhuge::core {
namespace {

using net::Packet;
using sim::Duration;
using sim::Simulator;
using sim::TimePoint;
using namespace sim::literals;

TimePoint at(std::int64_t ms) { return TimePoint::zero() + Duration::millis(ms); }

OobConfig raw_oob() {
  OobConfig cfg;
  cfg.delta_smoothing_alpha = 1.0;  // literal Algorithm 1 for unit tests
  return cfg;
}

TEST(OobUpdater, NoDeltasMeansNoDelay) {
  sim::Rng rng(1);
  OobFeedbackUpdater u(raw_oob(), rng);
  for (int i = 0; i < 10; ++i) u.on_data_delay(10_ms, at(i));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(u.ack_delay(at(20 + i)), Duration::zero());
  }
}

TEST(OobUpdater, PositiveDeltaDelaysAcks) {
  sim::Rng rng(1);
  OobFeedbackUpdater u(raw_oob(), rng);
  u.on_data_delay(10_ms, at(0));
  u.on_data_delay(30_ms, at(1));  // +20 ms delta
  const Duration d = u.ack_delay(at(2));
  EXPECT_EQ(d, 20_ms);
}

TEST(OobUpdater, ConservationAcrossManyAcks) {
  sim::Rng rng(1);
  OobFeedbackUpdater u(raw_oob(), rng);
  u.on_data_delay(10_ms, at(0));
  u.on_data_delay(40_ms, at(1));  // +30 ms observed in total
  Duration total = Duration::zero();
  for (int i = 0; i < 50; ++i) {
    // Sampler would re-draw the 30 ms delta repeatedly; conservation must
    // cap the cumulative applied shift at the observed 30 ms. The order
    // floor may carry earlier holds forward, so measure the extras via
    // the applied-shift accounting.
    (void)u.ack_delay(at(2 + i));
  }
  total = u.applied_shift();
  EXPECT_LE(total, 30_ms + 1_ns);
}

TEST(OobUpdater, TokensCancelSampledDelay) {
  sim::Rng rng(1);
  OobFeedbackUpdater u(raw_oob(), rng);
  u.on_data_delay(10_ms, at(0));
  u.on_data_delay(40_ms, at(1));  // +30
  u.on_data_delay(10_ms, at(2));  // -30 -> token
  EXPECT_EQ(u.token_total(), 30_ms);
  const Duration d = u.ack_delay(at(3));
  EXPECT_EQ(d, Duration::zero());  // token ate the sampled 30 ms
  EXPECT_LT(u.token_total(), 30_ms + 1_ns);
}

TEST(OobUpdater, MaxExtraDelayClamps) {
  sim::Rng rng(1);
  OobConfig cfg = raw_oob();
  cfg.max_extra_delay = 15_ms;
  cfg.max_pending_shift = 1_s;
  OobFeedbackUpdater u(cfg, rng);
  u.on_data_delay(0_ms, at(0));
  u.on_data_delay(500_ms, at(1));
  EXPECT_LE(u.ack_delay(at(2)), 15_ms);
}

TEST(OobUpdater, PendingShiftCapBoundsReleaseClock) {
  sim::Rng rng(1);
  OobConfig cfg = raw_oob();
  cfg.max_extra_delay = 200_ms;
  cfg.max_pending_shift = 100_ms;
  OobFeedbackUpdater u(cfg, rng);
  Duration prev_total = Duration::zero();
  for (int i = 0; i < 20; ++i) {
    u.on_data_delay(Duration::millis(50 * i), at(i));
  }
  // Many ACKs at the same arrival instant: the release clock may not run
  // more than 100 ms ahead of now.
  for (int i = 0; i < 20; ++i) {
    const Duration d = u.ack_delay(at(30));
    EXPECT_LE(d, 100_ms + 1_ns);
    EXPECT_GE(d, prev_total);  // order preserved: non-decreasing holds
    prev_total = d;
  }
}

TEST(OobUpdater, OrderPreservedUnderRandomInput) {
  // Property: release times (arrival + delay) never go backwards, for any
  // interleaving of data deltas and ACK arrivals.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::Rng rng(seed);
    sim::Rng traffic(seed + 100);
    OobFeedbackUpdater u(raw_oob(), rng);
    TimePoint last_release = TimePoint::zero();
    std::int64_t t_ms = 0;
    Duration delay = 10_ms;
    for (int i = 0; i < 500; ++i) {
      t_ms += static_cast<std::int64_t>(traffic.uniform_int(5));
      if (traffic.chance(0.5)) {
        delay += Duration::from_millis(traffic.normal(0.0, 5.0));
        if (delay < Duration::zero()) delay = Duration::zero();
        u.on_data_delay(delay, at(t_ms));
      } else {
        const Duration d = u.ack_delay(at(t_ms));
        const TimePoint release = at(t_ms) + d;
        EXPECT_GE(release, last_release) << "seed " << seed << " step " << i;
        last_release = release;
      }
    }
  }
}

TEST(OobUpdater, AppliedNeverExceedsObserved) {
  // Property: cumulative applied shift <= cumulative observed positive
  // delta, under random traffic.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::Rng rng(seed);
    sim::Rng traffic(seed + 200);
    OobFeedbackUpdater u(raw_oob(), rng);
    std::int64_t t_ms = 0;
    Duration delay = 20_ms;
    for (int i = 0; i < 1000; ++i) {
      t_ms += 1;
      if (traffic.chance(0.5)) {
        delay += Duration::from_millis(traffic.normal(0.0, 8.0));
        if (delay < Duration::zero()) delay = Duration::zero();
        u.on_data_delay(delay, at(t_ms));
      } else {
        (void)u.ack_delay(at(t_ms));
      }
      EXPECT_LE(u.applied_shift(), u.observed_shift() + 1_ns);
    }
  }
}

TEST(OobUpdater, AccumulationAblationDistorts) {
  // With distributional sampling off, three +1 ms deltas pile into the
  // next single ACK (the §5.2 counterexample).
  sim::Rng rng(1);
  OobConfig cfg = raw_oob();
  cfg.distributional_sampling = false;
  OobFeedbackUpdater u(cfg, rng);
  u.on_data_delay(10_ms, at(0));
  u.on_data_delay(11_ms, at(1));
  u.on_data_delay(12_ms, at(2));
  u.on_data_delay(13_ms, at(3));
  EXPECT_EQ(u.ack_delay(at(4)), 3_ms);       // all three deltas at once
  EXPECT_EQ(u.ack_delay(at(10)), 0_ms);      // nothing left
}

TEST(OobUpdater, SmoothingReducesDeltaMagnitude) {
  sim::Rng rng(1);
  OobConfig cfg = raw_oob();
  cfg.delta_smoothing_alpha = 0.25;
  OobFeedbackUpdater u(cfg, rng);
  u.on_data_delay(10_ms, at(0));
  u.on_data_delay(30_ms, at(1));  // smoothed: +5 ms only
  EXPECT_EQ(u.ack_delay(at(2)), 5_ms);
}

TEST(AckScheduler, ReleasesInOrderAtScheduledTimes) {
  Simulator sim;
  std::vector<std::pair<std::uint64_t, TimePoint>> out;
  AckScheduler sched(sim, [&](Packet p) { out.emplace_back(p.uid, sim.now()); });
  Packet a, b;
  a.uid = 1;
  b.uid = 2;
  sched.hold(std::move(a), at(10));
  sched.hold(std::move(b), at(20));
  sim.run();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], std::make_pair<std::uint64_t>(1, at(10)));
  EXPECT_EQ(out[1], std::make_pair<std::uint64_t>(2, at(20)));
}

TEST(AckScheduler, RetreatPullsReleasesEarlier) {
  Simulator sim;
  std::vector<TimePoint> out;
  AckScheduler sched(sim, [&](Packet) { out.push_back(sim.now()); });
  Packet a, b;
  sched.hold(std::move(a), at(100));
  sched.hold(std::move(b), at(200));
  sim.schedule_at(at(10), [&] {
    const Duration retreated = sched.retreat(50_ms);
    EXPECT_EQ(retreated, 50_ms);
  });
  sim.run();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], at(50));
  EXPECT_EQ(out[1], at(150));
}

TEST(AckScheduler, RetreatClampsAtNow) {
  Simulator sim;
  std::vector<TimePoint> out;
  AckScheduler sched(sim, [&](Packet) { out.push_back(sim.now()); });
  Packet a;
  sched.hold(std::move(a), at(100));
  sim.schedule_at(at(60), [&] { (void)sched.retreat(500_ms); });
  sim.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], at(60));  // released immediately, not in the past
}

TEST(InbandUpdater, ConstructsTwccFromFortunes) {
  Simulator sim;
  std::vector<Packet> sent;
  InbandConfig cfg;
  cfg.feedback_interval = 25_ms;
  net::FlowId flow{1, 100, 5000, 6000, 17};
  InbandFeedbackUpdater u(sim, cfg, flow, /*ssrc=*/7,
                          [&](Packet p) { sent.push_back(std::move(p)); });
  net::RtpHeader h;
  h.twcc_seq = 5;
  sim.schedule_at(at(0), [&] { u.on_rtp_packet(h, 12_ms); });
  sim.run_until(at(100));
  ASSERT_EQ(sent.size(), 1u);
  ASSERT_TRUE(sent[0].is_rtcp());
  const auto& fb = std::get<net::TwccFeedback>(sent[0].rtcp().payload);
  EXPECT_TRUE(fb.constructed_by_ap);
  EXPECT_EQ(fb.ssrc, 7u);
  ASSERT_EQ(fb.entries.size(), 1u);
  EXPECT_EQ(fb.entries[0].twcc_seq, 5);
  EXPECT_EQ(fb.entries[0].recv_time, at(0) + 12_ms);
  EXPECT_EQ(sent[0].flow, flow.reversed());
}

TEST(InbandUpdater, ReportedRecvTimesAreMonotone) {
  Simulator sim;
  std::vector<Packet> sent;
  net::FlowId flow{1, 100, 5000, 6000, 17};
  InbandFeedbackUpdater u(sim, {}, flow, 1,
                          [&](Packet p) { sent.push_back(std::move(p)); });
  // Noisy predictions: 30 ms then 5 ms — reported times must not regress.
  net::RtpHeader h1, h2;
  h1.twcc_seq = 1;
  h2.twcc_seq = 2;
  sim.schedule_at(at(0), [&] {
    u.on_rtp_packet(h1, 30_ms);
    u.on_rtp_packet(h2, 5_ms);
  });
  sim.run_until(at(100));
  ASSERT_EQ(sent.size(), 1u);
  const auto& fb = std::get<net::TwccFeedback>(sent[0].rtcp().payload);
  ASSERT_EQ(fb.entries.size(), 2u);
  EXPECT_GE(fb.entries[1].recv_time, fb.entries[0].recv_time);
}

TEST(InbandUpdater, DropsOnlyMatchingClientTwcc) {
  Simulator sim;
  net::FlowId flow{1, 100, 5000, 6000, 17};
  InbandFeedbackUpdater u(sim, {}, flow, /*ssrc=*/7, [](Packet) {});

  Packet own_twcc;
  own_twcc.header = net::RtcpHeader{net::TwccFeedback{.ssrc = 7, .entries = {}}};
  EXPECT_TRUE(u.should_drop_uplink(own_twcc));

  Packet other_twcc;
  other_twcc.header = net::RtcpHeader{net::TwccFeedback{.ssrc = 9, .entries = {}}};
  EXPECT_FALSE(u.should_drop_uplink(other_twcc));

  Packet nack;
  nack.header = net::RtcpHeader{net::RtcpNack{.ssrc = 7, .seqs = {}}};
  EXPECT_FALSE(u.should_drop_uplink(nack));

  Packet data;
  data.header = net::RtpHeader{};
  EXPECT_FALSE(u.should_drop_uplink(data));
}

TEST(ZhugeFlow, AnnotatesPredictionsAndRoutesUplink) {
  Simulator sim;
  sim::Rng rng(1);
  net::FlowId flow{1, 100, 5000, 6000, 6};
  std::vector<Packet> to_server;
  ZhugeFlow zf(sim, rng, flow, {}, [&](Packet p) { to_server.push_back(std::move(p)); });
  queue::DropTailFifo q(-1);

  Packet data;
  data.flow = flow;
  data.size_bytes = 1240;
  data.header = net::TcpHeader{};
  zf.on_downlink(data, q);
  EXPECT_GE(data.predicted_delay_ms, 0.0);

  Packet ack;
  ack.flow = flow.reversed();
  net::TcpHeader ah;
  ah.is_ack = true;
  ack.header = ah;
  const auto decision = zf.on_uplink(ack);
  EXPECT_EQ(decision.action, UplinkAction::kDelay);
}

TEST(ZhugeFlow, HandleUplinkForwardsRtcpNack) {
  Simulator sim;
  sim::Rng rng(1);
  net::FlowId flow{1, 100, 5000, 6000, 17};
  std::vector<Packet> to_server;
  ZhugeFlow zf(sim, rng, flow, {}, [&](Packet p) { to_server.push_back(std::move(p)); });
  queue::DropTailFifo q(-1);

  Packet data;
  data.flow = flow;
  data.size_bytes = 1240;
  net::RtpHeader rh;
  rh.ssrc = 3;
  data.header = rh;
  zf.on_downlink(data, q);  // creates the in-band updater with ssrc 3

  Packet nack;
  nack.flow = flow.reversed();
  nack.header = net::RtcpHeader{net::RtcpNack{.ssrc = 3, .seqs = {}}};
  EXPECT_EQ(zf.handle_uplink(std::move(nack)), UplinkAction::kForward);
  EXPECT_EQ(to_server.size(), 1u);

  Packet twcc;
  twcc.flow = flow.reversed();
  twcc.header = net::RtcpHeader{net::TwccFeedback{.ssrc = 3, .entries = {}}};
  EXPECT_EQ(zf.handle_uplink(std::move(twcc)), UplinkAction::kDrop);
  EXPECT_EQ(to_server.size(), 1u);
}

}  // namespace
}  // namespace zhuge::core
