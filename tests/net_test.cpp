// Unit tests for the packet model, flow identities, sequence unwrapping
// and the wired point-to-point link.

#include <gtest/gtest.h>

#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/seq.hpp"
#include "sim/simulator.hpp"

namespace zhuge::net {
namespace {

using sim::Duration;
using sim::Simulator;
using sim::TimePoint;
using namespace sim::literals;

TEST(FlowId, ReversedSwapsEndpoints) {
  const FlowId f{1, 2, 100, 200, 17};
  const FlowId r = f.reversed();
  EXPECT_EQ(r.src_ip, 2u);
  EXPECT_EQ(r.dst_ip, 1u);
  EXPECT_EQ(r.src_port, 200);
  EXPECT_EQ(r.dst_port, 100);
  EXPECT_EQ(r.proto, 17);
  EXPECT_EQ(r.reversed(), f);
}

TEST(FlowId, EqualityAndHash) {
  const FlowId a{1, 2, 100, 200, 6};
  const FlowId b{1, 2, 100, 200, 6};
  const FlowId c{1, 2, 100, 201, 6};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  FlowIdHash h;
  EXPECT_EQ(h(a), h(b));
  EXPECT_NE(h(a), h(c));  // not guaranteed in general, but should hold here
}

TEST(Packet, HeaderVariantAccessors) {
  Packet p;
  EXPECT_FALSE(p.is_tcp());
  EXPECT_FALSE(p.is_rtp());
  EXPECT_FALSE(p.is_rtcp());
  p.header = TcpHeader{};
  EXPECT_TRUE(p.is_tcp());
  p.tcp().seq = 42;
  EXPECT_EQ(p.tcp().seq, 42u);
  p.header = RtpHeader{};
  EXPECT_TRUE(p.is_rtp());
  p.header = RtcpHeader{TwccFeedback{}};
  EXPECT_TRUE(p.is_rtcp());
}

TEST(SeqUnwrapper, MonotoneWithoutWrap) {
  SeqUnwrapper u;
  EXPECT_EQ(u.unwrap(0), 0);
  EXPECT_EQ(u.unwrap(1), 1);
  EXPECT_EQ(u.unwrap(100), 100);
}

TEST(SeqUnwrapper, ForwardWrap) {
  SeqUnwrapper u;
  EXPECT_EQ(u.unwrap(65530), 65530);
  EXPECT_EQ(u.unwrap(65535), 65535);
  EXPECT_EQ(u.unwrap(2), 65538);  // wrapped forward
}

TEST(SeqUnwrapper, BackwardReordering) {
  SeqUnwrapper u;
  EXPECT_EQ(u.unwrap(10), 10);
  EXPECT_EQ(u.unwrap(8), 8);  // small reorder goes backward, no wrap
}

TEST(SeqUnwrapper, BackwardAcrossWrapBoundary) {
  SeqUnwrapper u;
  EXPECT_EQ(u.unwrap(65535), 65535);
  EXPECT_EQ(u.unwrap(3), 65539);
  EXPECT_EQ(u.unwrap(65533), 65533);  // late packet from before the wrap
}

TEST(SeqUnwrapper, HalfRangeJumpTieBreaksForward) {
  // At a distance of exactly 0x8000 the forward and backward readings are
  // equidistant; the unwrapper is documented to pick *forward* (a
  // half-range jump is a loss burst, not a 32768-packet reordering).
  // This pins the `fwd <= 0x8000` comparison in seq.hpp — flipping it to
  // `<` would shift every post-gap value by 65536.
  {
    SeqUnwrapper u;
    EXPECT_EQ(u.unwrap(0), 0);
    EXPECT_EQ(u.unwrap(0x8000), 0x8000);  // forward, not -0x8000
    EXPECT_EQ(u.unwrap(0), 0x10000);      // and again across the wrap
  }
  {
    // One short of the tie still goes backward...
    SeqUnwrapper u;
    EXPECT_EQ(u.unwrap(0), 0);
    EXPECT_EQ(u.unwrap(0x8001), -0x7FFF);
  }
  {
    // ...and one past it (forward distance 0x7FFF) goes forward.
    SeqUnwrapper u;
    EXPECT_EQ(u.unwrap(2), 2);
    EXPECT_EQ(u.unwrap(0x8001), 0x8001);
  }
}

TEST(SeqUnwrapper, SurvivesManyWraps) {
  SeqUnwrapper u;
  std::int64_t expected = 0;
  std::uint16_t wire = 0;
  for (int i = 0; i < 300'000; ++i) {
    EXPECT_EQ(u.unwrap(wire), expected);
    ++wire;
    ++expected;
  }
}

Packet make_packet(std::uint32_t bytes, std::uint64_t uid = 0) {
  Packet p;
  p.uid = uid;
  p.size_bytes = bytes;
  return p;
}

TEST(PointToPointLink, DeliversWithSerializationPlusPropagation) {
  Simulator sim;
  std::vector<TimePoint> deliveries;
  PointToPointLink::Config cfg;
  cfg.rate_bps = 8e6;  // 1 byte per microsecond
  cfg.prop_delay = 10_ms;
  PointToPointLink link(sim, cfg, [&](Packet) { deliveries.push_back(sim.now()); });
  link.send(make_packet(1000));
  sim.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0], TimePoint::zero() + 1_ms + 10_ms);
}

TEST(PointToPointLink, SerializesBackToBack) {
  Simulator sim;
  std::vector<TimePoint> deliveries;
  PointToPointLink::Config cfg;
  cfg.rate_bps = 8e6;
  cfg.prop_delay = Duration::zero();
  PointToPointLink link(sim, cfg, [&](Packet) { deliveries.push_back(sim.now()); });
  link.send(make_packet(1000));
  link.send(make_packet(1000));
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], TimePoint::zero() + 1_ms);
  EXPECT_EQ(deliveries[1], TimePoint::zero() + 2_ms);
}

TEST(PointToPointLink, PreservesOrder) {
  Simulator sim;
  std::vector<std::uint64_t> uids;
  PointToPointLink::Config cfg;
  PointToPointLink link(sim, cfg, [&](Packet p) { uids.push_back(p.uid); });
  for (std::uint64_t i = 0; i < 20; ++i) link.send(make_packet(500, i));
  sim.run();
  ASSERT_EQ(uids.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(uids[i], i);
}

TEST(PointToPointLink, BoundedBufferDrops) {
  Simulator sim;
  int delivered = 0;
  PointToPointLink::Config cfg;
  cfg.rate_bps = 8e3;  // slow: keeps packets queued
  cfg.buffer_bytes = 2000;
  PointToPointLink link(sim, cfg, [&](Packet) { ++delivered; });
  // First is in transmission (not buffered); next two fill the buffer.
  EXPECT_TRUE(link.send(make_packet(1000)));
  EXPECT_TRUE(link.send(make_packet(1000)));
  EXPECT_TRUE(link.send(make_packet(1000)));
  EXPECT_FALSE(link.send(make_packet(1000)));  // overflow
  EXPECT_EQ(link.drops(), 1u);
  sim.run();
  EXPECT_EQ(delivered, 3);
}

TEST(PointToPointLink, JitterBoundedByConfig) {
  Simulator sim;
  sim::Rng rng(1);
  std::vector<TimePoint> deliveries;
  PointToPointLink::Config cfg;
  cfg.rate_bps = 8e9;
  cfg.prop_delay = 10_ms;
  cfg.jitter_max = 5_ms;
  PointToPointLink link(sim, cfg, [&](Packet) { deliveries.push_back(sim.now()); });
  link.set_rng(&rng);
  for (int i = 0; i < 50; ++i) link.send(make_packet(100));
  sim.run();
  for (const auto t : deliveries) {
    EXPECT_GE(t, TimePoint::zero() + 10_ms);
    EXPECT_LE(t, TimePoint::zero() + 16_ms);
  }
}

}  // namespace
}  // namespace zhuge::net
