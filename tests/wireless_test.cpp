// Unit tests for the wireless substrate: channel, shared-medium arbiter,
// WiFi link (AMPDU aggregation, retries), and the cellular link.

#include <gtest/gtest.h>

#include <vector>

#include "queue/fifo.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic.hpp"
#include "wireless/cellular_link.hpp"
#include "wireless/channel.hpp"
#include "wireless/medium.hpp"
#include "wireless/wifi_link.hpp"

namespace zhuge::wireless {
namespace {

using net::Packet;
using sim::Duration;
using sim::Simulator;
using sim::TimePoint;
using namespace sim::literals;

Packet make_packet(std::uint32_t bytes, std::uint64_t uid = 0) {
  Packet p;
  p.uid = uid;
  p.size_bytes = bytes;
  return p;
}

TEST(Channel, TraceDrivenFollowsTrace) {
  const auto tr = trace::step_trace(20e6, 2e6, 1_s, 2_s);
  Channel ch(&tr);
  EXPECT_TRUE(ch.trace_driven());
  EXPECT_DOUBLE_EQ(ch.rate_bps(TimePoint::zero()), 20e6);
  EXPECT_DOUBLE_EQ(ch.rate_bps(TimePoint::zero() + 1500_ms), 2e6);
}

TEST(Channel, McsModeAndClamping) {
  Channel ch(7);
  EXPECT_FALSE(ch.trace_driven());
  EXPECT_DOUBLE_EQ(ch.rate_bps(TimePoint::zero()), kMcsRateBps[7]);
  ch.set_mcs(0);
  EXPECT_DOUBLE_EQ(ch.rate_bps(TimePoint::zero()), kMcsRateBps[0]);
  ch.set_mcs(-5);
  EXPECT_EQ(ch.mcs(), 0);
  ch.set_mcs(100);
  EXPECT_EQ(ch.mcs(), 7);
}

TEST(Medium, GrantsSequentially) {
  Simulator sim;
  sim::Rng rng(1);
  Medium medium(sim, rng, {});
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    medium.transmit([&order, i] { order.push_back(i); return Duration::millis(1); },
                    [] {});
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Medium, InterferersSlowLocalTraffic) {
  auto run_with = [](int interferers) {
    Simulator sim;
    sim::Rng rng(1);
    Medium::Config cfg;
    cfg.interferers = interferers;
    Medium medium(sim, rng, cfg);
    TimePoint done;
    int remaining = 50;
    std::function<void()> next = [&] {
      if (remaining-- == 0) {
        done = sim.now();
        return;
      }
      medium.transmit([] { return Duration::millis(1); }, [&] { next(); });
    };
    next();
    sim.run();
    return done;
  };
  const TimePoint clean = run_with(0);
  const TimePoint noisy = run_with(10);
  // With 10 saturating interferers the local share is ~1/11: roughly an
  // order of magnitude slower.
  EXPECT_GT((noisy - TimePoint::zero()).to_seconds(),
            5.0 * (clean - TimePoint::zero()).to_seconds());
}

struct WifiHarness {
  Simulator sim;
  sim::Rng rng{1};
  trace::Trace tr;
  Channel channel;
  Medium medium;
  queue::DropTailFifo qdisc{-1};
  std::vector<Packet> delivered;
  std::unique_ptr<WifiLink> link;

  explicit WifiHarness(double rate_bps, WifiLink::Config cfg = {})
      : tr(trace::constant_trace(rate_bps, 1000_s)),
        channel(&tr),
        medium(sim, rng, {}) {
    link = std::make_unique<WifiLink>(sim, rng, channel, medium, qdisc, cfg,
                                      [this](Packet p) { delivered.push_back(std::move(p)); });
  }
};

TEST(WifiLink, DeliversAllPacketsOnCleanChannel) {
  WifiLink::Config cfg;
  cfg.mpdu_loss_prob = 0.0;
  WifiHarness h(20e6, cfg);
  for (std::uint64_t i = 0; i < 100; ++i) h.link->offer(make_packet(1200, i));
  h.sim.run_until(TimePoint::zero() + 5_s);
  ASSERT_EQ(h.delivered.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(h.delivered[i].uid, i);
}

TEST(WifiLink, ThroughputTracksChannelRate) {
  WifiLink::Config cfg;
  cfg.mpdu_loss_prob = 0.0;
  WifiHarness h(10e6, cfg);
  // Offer 2 MB; at 10 Mbps this needs ~1.6 s plus overheads.
  const int n = 2'000'000 / 1500;
  for (int i = 0; i < n; ++i) h.link->offer(make_packet(1500));
  h.sim.run_until(TimePoint::zero() + 10_s);
  ASSERT_EQ(h.delivered.size(), static_cast<std::size_t>(n));
  const double took = h.delivered.back().delivered_time.to_seconds();
  EXPECT_GT(took, 1.4);
  EXPECT_LT(took, 2.4);  // overheads bounded
}

TEST(WifiLink, AggregatesSimultaneousDepartures) {
  WifiLink::Config cfg;
  cfg.mpdu_loss_prob = 0.0;
  cfg.max_agg_packets = 8;
  WifiHarness h(50e6, cfg);
  std::vector<TimePoint> dequeues;
  h.link->set_dequeue_observer(
      [&](const Packet&, TimePoint t) { dequeues.push_back(t); });
  for (int i = 0; i < 16; ++i) h.link->offer(make_packet(1200));
  h.sim.run_until(TimePoint::zero() + 1_s);
  ASSERT_EQ(dequeues.size(), 16u);
  // First grant happens before packet 9 is enqueued? All 16 offered at
  // t=0, so departures come in aggregation bursts of up to 8 with equal
  // timestamps inside each burst.
  int simultaneous = 0;
  for (std::size_t i = 1; i < dequeues.size(); ++i) {
    if (dequeues[i] == dequeues[i - 1]) ++simultaneous;
  }
  EXPECT_GE(simultaneous, 10);
}

TEST(WifiLink, RespectsAggregationByteCap) {
  WifiLink::Config cfg;
  cfg.mpdu_loss_prob = 0.0;
  cfg.max_agg_bytes = 3000;
  WifiHarness h(50e6, cfg);
  std::vector<TimePoint> dequeues;
  h.link->set_dequeue_observer(
      [&](const Packet&, TimePoint t) { dequeues.push_back(t); });
  for (int i = 0; i < 6; ++i) h.link->offer(make_packet(1200));
  h.sim.run_until(TimePoint::zero() + 1_s);
  ASSERT_EQ(dequeues.size(), 6u);
  // Max 2 packets (2400B) fit under the 3000B cap per AMPDU.
  int burst = 1;
  for (std::size_t i = 1; i < dequeues.size(); ++i) {
    if (dequeues[i] == dequeues[i - 1]) {
      ++burst;
      EXPECT_LE(burst, 2);
    } else {
      burst = 1;
    }
  }
}

TEST(WifiLink, RetriesRecoverLosses) {
  WifiLink::Config cfg;
  cfg.mpdu_loss_prob = 0.3;  // harsh channel, retries must still deliver
  WifiHarness h(20e6, cfg);
  for (std::uint64_t i = 0; i < 200; ++i) h.link->offer(make_packet(1200, i));
  h.sim.run_until(TimePoint::zero() + 30_s);
  EXPECT_EQ(h.delivered.size() + h.link->retry_drops(), 200u);
  // With 7 retries at 30% loss, effectively everything arrives.
  EXPECT_GE(h.delivered.size(), 199u);
}

TEST(WifiLink, DeliveryObserverFiresOnAirSuccess) {
  WifiLink::Config cfg;
  cfg.mpdu_loss_prob = 0.0;
  WifiHarness h(20e6, cfg);
  int observed = 0;
  h.link->set_delivery_observer([&](const Packet&, TimePoint) { ++observed; });
  for (int i = 0; i < 10; ++i) h.link->offer(make_packet(1000));
  h.sim.run_until(TimePoint::zero() + 1_s);
  EXPECT_EQ(observed, 10);
}

TEST(WifiLink, LowRateLimitsAggregationByAirtime) {
  WifiLink::Config cfg;
  cfg.mpdu_loss_prob = 0.0;
  cfg.max_frame_airtime = 4_ms;
  WifiHarness h(1e6, cfg);  // 4 ms at 1 Mbps = 500 bytes
  std::vector<TimePoint> dequeues;
  h.link->set_dequeue_observer(
      [&](const Packet&, TimePoint t) { dequeues.push_back(t); });
  for (int i = 0; i < 4; ++i) h.link->offer(make_packet(1200));
  h.sim.run_until(TimePoint::zero() + 1_s);
  ASSERT_EQ(dequeues.size(), 4u);
  // Airtime cap of 500 B per frame: one packet per AMPDU, so no
  // simultaneous departures.
  for (std::size_t i = 1; i < dequeues.size(); ++i) {
    EXPECT_NE(dequeues[i], dequeues[i - 1]);
  }
}

TEST(CellularLink, DeliversAtTraceRate) {
  Simulator sim;
  sim::Rng rng(1);
  const auto tr = trace::constant_trace(8e6, 100_s);
  Channel ch(&tr);
  queue::DropTailFifo q(-1);
  std::vector<Packet> delivered;
  CellularLink link(sim, rng, ch, q, {},
                    [&](Packet p) { delivered.push_back(std::move(p)); });
  // 1 MB at 8 Mbps = 1 s.
  const int n = 1'000'000 / 1000;
  for (int i = 0; i < n; ++i) link.offer(make_packet(1000));
  sim.run_until(TimePoint::zero() + 5_s);
  ASSERT_EQ(delivered.size(), static_cast<std::size_t>(n));
  const double took = delivered.back().delivered_time.to_seconds();
  EXPECT_NEAR(took, 1.0, 0.1);
}

TEST(CellularLink, BudgetDoesNotBankWhileIdle) {
  Simulator sim;
  sim::Rng rng(1);
  const auto tr = trace::constant_trace(80e6, 100_s);
  Channel ch(&tr);
  queue::DropTailFifo q(-1);
  std::vector<TimePoint> deliveries;
  CellularLink link(sim, rng, ch, q, {},
                    [&](Packet) { deliveries.push_back(sim.now()); });
  link.offer(make_packet(1000));
  sim.run_until(TimePoint::zero() + 500_ms);
  // A long idle period must not accumulate credit that would let a later
  // burst bypass the TTI pacing entirely.
  for (int i = 0; i < 100; ++i) link.offer(make_packet(10'000));
  sim.run_until(TimePoint::zero() + 10_s);
  ASSERT_GE(deliveries.size(), 2u);
  // 1 MB at 80 Mbps = 100 ms minimum.
  const double burst_span =
      (deliveries.back() - deliveries[1]).to_seconds();
  EXPECT_GT(burst_span, 0.05);
}

TEST(WifiLink, RetryAccountingIsDeterministic) {
  // Same seed, same lossy channel: the retry/drop realization must be
  // bit-identical run to run — chaos verdicts and regression baselines
  // depend on it. Every offered packet is either delivered or counted as
  // a retry drop; none vanish.
  auto run_once = [](std::uint64_t seed) {
    WifiLink::Config cfg;
    cfg.mpdu_loss_prob = 0.4;
    cfg.max_retries = 2;  // low enough that some packets actually die
    WifiHarness h(20e6, cfg);
    h.rng = sim::Rng(seed);
    for (std::uint64_t i = 0; i < 300; ++i) h.link->offer(make_packet(1200, i));
    h.sim.run_until(TimePoint::zero() + 60_s);
    std::vector<std::uint64_t> uids;
    uids.reserve(h.delivered.size());
    for (const Packet& p : h.delivered) uids.push_back(p.uid);
    return std::pair{uids, h.link->retry_drops()};
  };
  const auto [uids_a, drops_a] = run_once(3);
  EXPECT_EQ(uids_a.size() + drops_a, 300u);  // conservation
  EXPECT_GT(drops_a, 0u);                    // the fault path actually ran
  EXPECT_EQ(run_once(3), (std::pair{uids_a, drops_a}));
  EXPECT_NE(run_once(4).second, drops_a);
}

TEST(CellularLink, ResidualLossAccountingIsDeterministic) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim;
    sim::Rng rng(seed);
    const auto tr = trace::constant_trace(8e6, 100_s);
    Channel ch(&tr);
    queue::DropTailFifo q(-1);
    std::vector<std::uint64_t> uids;
    CellularLink::Config cfg;
    cfg.loss_prob = 0.3;
    CellularLink link(sim, rng, ch, q, cfg,
                      [&](Packet p) { uids.push_back(p.uid); });
    for (std::uint64_t i = 0; i < 400; ++i) link.offer(make_packet(1000, i));
    sim.run_until(TimePoint::zero() + 10_s);
    return uids;
  };
  const auto uids = run_once(5);
  EXPECT_GT(uids.size(), 200u);
  EXPECT_LT(uids.size(), 350u);  // ~30% lost to residual air loss
  EXPECT_EQ(run_once(5), uids);  // same seed, same surviving set
  EXPECT_NE(run_once(6), uids);
}

TEST(CellularLink, ResidualLossDropsPackets) {
  Simulator sim;
  sim::Rng rng(1);
  const auto tr = trace::constant_trace(8e6, 100_s);
  Channel ch(&tr);
  queue::DropTailFifo q(-1);
  int delivered = 0;
  CellularLink::Config cfg;
  cfg.loss_prob = 0.5;
  CellularLink link(sim, rng, ch, q, cfg, [&](Packet) { ++delivered; });
  for (int i = 0; i < 400; ++i) link.offer(make_packet(1000));
  sim.run_until(TimePoint::zero() + 10_s);
  EXPECT_GT(delivered, 120);
  EXPECT_LT(delivered, 280);
}

}  // namespace
}  // namespace zhuge::wireless
