// Unit tests for the congestion-control algorithms: CUBIC, Copa, BBR,
// the ABC sender, GCC, and NADA.

#include <gtest/gtest.h>

#include "cca/abc_sender.hpp"
#include "cca/bbr.hpp"
#include "cca/copa.hpp"
#include "cca/cubic.hpp"
#include "cca/gcc.hpp"
#include "cca/nada.hpp"
#include "cca/scream.hpp"

namespace zhuge::cca {
namespace {

using sim::Duration;
using sim::TimePoint;
using namespace sim::literals;

TimePoint at(std::int64_t ms) { return TimePoint::zero() + Duration::millis(ms); }

AckEvent ack(std::int64_t t_ms, double rtt_ms, std::uint64_t bytes = kMss,
             double rate_bps = 0.0) {
  AckEvent ev;
  ev.now = at(t_ms);
  ev.rtt = Duration::from_millis(rtt_ms);
  ev.acked_bytes = bytes;
  ev.delivery_rate_bps = rate_bps;
  return ev;
}

TEST(Cubic, SlowStartDoublesPerRtt) {
  Cubic c;
  const auto initial = c.cwnd_bytes();
  // Ack a full window: slow start grows cwnd by acked bytes.
  c.on_ack(ack(0, 50, initial));
  EXPECT_EQ(c.cwnd_bytes(), 2 * initial);
  EXPECT_TRUE(c.in_slow_start());
}

TEST(Cubic, LossAppliesBeta) {
  Cubic c;
  for (int i = 0; i < 50; ++i) c.on_ack(ack(i * 10, 50));
  const auto before = c.cwnd_bytes();
  c.on_loss(at(600), kMss);
  EXPECT_NEAR(static_cast<double>(c.cwnd_bytes()),
              0.7 * static_cast<double>(before),
              static_cast<double>(kMss));
  EXPECT_FALSE(c.in_slow_start());
}

TEST(Cubic, GrowsAgainAfterLoss) {
  Cubic c;
  for (int i = 0; i < 50; ++i) c.on_ack(ack(i * 10, 50));
  c.on_loss(at(600), kMss);
  const auto after_loss = c.cwnd_bytes();
  for (int i = 0; i < 300; ++i) c.on_ack(ack(700 + i * 10, 50));
  EXPECT_GT(c.cwnd_bytes(), after_loss);
}

TEST(Cubic, RtoCollapsesWindow) {
  Cubic c;
  for (int i = 0; i < 50; ++i) c.on_ack(ack(i * 10, 50));
  c.on_rto(at(600));
  EXPECT_EQ(c.cwnd_bytes(), 2 * kMss);
}

TEST(Copa, IncreasesWhenQueueEmpty) {
  Copa c;
  const auto initial = c.cwnd_bytes();
  // Constant RTT = min RTT: dq = 0, target infinite, cwnd grows.
  for (int i = 0; i < 100; ++i) c.on_ack(ack(i * 10, 50));
  EXPECT_GT(c.cwnd_bytes(), initial);
}

TEST(Copa, BacksOffUnderStandingQueue) {
  Copa c;
  for (int i = 0; i < 100; ++i) c.on_ack(ack(i * 10, 50));
  const auto high = c.cwnd_bytes();
  // Now the RTT jumps to 250 ms and stays: dq = 200 ms, target rate
  // = 1/(0.5*0.2) = 10 pkts/s. Velocity doubles once per RTT after three
  // consistent RTTs, so the collapse accelerates over ~15-20 RTTs.
  for (int i = 0; i < 1000; ++i) c.on_ack(ack(1000 + i * 10, 250));
  EXPECT_LT(c.cwnd_bytes(), high / 2);
}

TEST(Copa, IgnoresIsolatedLoss) {
  Copa c;
  for (int i = 0; i < 50; ++i) c.on_ack(ack(i * 10, 50));
  const auto before = c.cwnd_bytes();
  c.on_loss(at(500), kMss);
  EXPECT_EQ(c.cwnd_bytes(), before);
}

TEST(Copa, RtoHalvesWindow) {
  Copa c;
  for (int i = 0; i < 100; ++i) c.on_ack(ack(i * 10, 50));
  const auto before = c.cwnd_bytes();
  c.on_rto(at(1100));
  EXPECT_LE(c.cwnd_bytes(), before / 2 + kMss);
}

TEST(Copa, PacingRatePositiveOnceRttKnown) {
  Copa c;
  EXPECT_DOUBLE_EQ(c.pacing_rate_bps(), 0.0);
  c.on_ack(ack(0, 50));
  EXPECT_GT(c.pacing_rate_bps(), 0.0);
}

TEST(Bbr, StartupGrowsAggressively) {
  Bbr b;
  const auto initial = b.cwnd_bytes();
  for (int i = 0; i < 20; ++i) {
    b.on_ack(ack(i * 10, 50, kMss, 5e6 * (1 + i)));  // growing bandwidth
  }
  EXPECT_GT(b.cwnd_bytes(), 2 * initial);
  EXPECT_GT(b.pacing_rate_bps(), 5e6);
}

TEST(Bbr, ExitsStartupWhenBandwidthPlateaus) {
  Bbr b;
  // Bandwidth stuck at 10 Mbps for many RTTs: pacing gain must fall from
  // the startup gain (2.885) to the probe cycle (<= 1.25).
  for (int i = 0; i < 400; ++i) {
    AckEvent ev = ack(i * 50, 50, kMss, 10e6);
    ev.bytes_in_flight = 10'000;
    b.on_ack(ev);
  }
  EXPECT_LT(b.pacing_rate_bps(), 10e6 * 1.5);
  EXPECT_GT(b.pacing_rate_bps(), 10e6 * 0.5);
}

TEST(Bbr, CwndTracksBdp) {
  Bbr b;
  for (int i = 0; i < 400; ++i) {
    AckEvent ev = ack(i * 50, 50, kMss, 10e6);
    ev.bytes_in_flight = 10'000;
    b.on_ack(ev);
  }
  // BDP = 10 Mbps * 50 ms = 62.5 kB; cwnd_gain 2 -> ~125 kB.
  EXPECT_NEAR(static_cast<double>(b.cwnd_bytes()), 125'000, 40'000);
}

TEST(AbcSender, FollowsRouterMarks) {
  AbcSender a;
  const auto initial = a.cwnd_bytes();
  AckEvent up = ack(0, 50);
  up.abc_echo = net::AbcMark::kAccelerate;
  for (int i = 0; i < 10; ++i) a.on_ack(up);
  EXPECT_EQ(a.cwnd_bytes(), initial + 10 * kMss);
  AckEvent down = ack(100, 50);
  down.abc_echo = net::AbcMark::kBrake;
  for (int i = 0; i < 20; ++i) a.on_ack(down);
  EXPECT_LE(a.cwnd_bytes(), initial);
}

std::vector<TwccObservation> feedback_window(std::int64_t start_ms, int n,
                                             double owd_ms, double owd_slope_ms,
                                             std::uint16_t& seq) {
  std::vector<TwccObservation> v;
  for (int i = 0; i < n; ++i) {
    TwccObservation o;
    o.twcc_seq = seq++;
    o.send_time = at(start_ms + i * 10);
    o.recv_time = o.send_time +
                  Duration::from_millis(owd_ms + owd_slope_ms * i);
    o.size_bytes = 12'000;  // 10 per 100 ms window = ~9.6 Mbps delivered
    v.push_back(o);
  }
  return v;
}

TEST(Gcc, RampsUpOnCleanPath) {
  Gcc g;
  const double start = g.target_rate_bps();
  std::uint16_t seq = 0;
  for (int w = 0; w < 100; ++w) {
    g.on_feedback(feedback_window(w * 100, 10, 20.0, 0.0, seq), at(w * 100 + 100));
  }
  EXPECT_GT(g.target_rate_bps(), 2.0 * start);
}

TEST(Gcc, DetectsOveruseOnGrowingDelay) {
  Gcc g;
  std::uint16_t seq = 0;
  for (int w = 0; w < 30; ++w) {
    g.on_feedback(feedback_window(w * 100, 10, 20.0, 0.0, seq), at(w * 100 + 100));
  }
  const double before = g.target_rate_bps();
  // Delay now grows 5 ms per packet, 50 ms per window: clear overuse.
  for (int w = 30; w < 40; ++w) {
    g.on_feedback(
        feedback_window(w * 100, 10, 20.0 + (w - 30) * 50.0, 5.0, seq),
        at(w * 100 + 100));
  }
  EXPECT_LT(g.target_rate_bps(), before);
}

TEST(Gcc, LossCutsRate) {
  Gcc g;
  std::uint16_t seq = 0;
  for (int w = 0; w < 50; ++w) {
    g.on_feedback(feedback_window(w * 100, 10, 20.0, 0.0, seq), at(w * 100 + 100));
  }
  const double before = g.target_rate_bps();
  g.on_loss_report(0.3, at(5000));
  EXPECT_LT(g.target_rate_bps(), before);
}

TEST(Gcc, LossRecoveryIsRateLimited) {
  Gcc g;
  std::uint16_t seq = 0;
  for (int w = 0; w < 50; ++w) {
    g.on_feedback(feedback_window(w * 100, 10, 20.0, 0.0, seq), at(w * 100 + 100));
  }
  g.on_loss_report(0.5, at(5000));
  const double cut = g.target_rate_bps();
  // Spamming clean loss reports within the update interval must not
  // re-inflate the rate.
  for (int i = 0; i < 20; ++i) g.on_loss_report(0.0, at(5000 + i * 10));
  EXPECT_LE(g.target_rate_bps(), cut * 1.06);
}

TEST(Gcc, TargetRespectsBounds) {
  Gcc::Config cfg;
  cfg.min_rate_bps = 200e3;
  cfg.max_rate_bps = 1e6;
  Gcc g(cfg);
  std::uint16_t seq = 0;
  for (int w = 0; w < 200; ++w) {
    g.on_feedback(feedback_window(w * 100, 10, 20.0, 0.0, seq), at(w * 100 + 100));
  }
  EXPECT_LE(g.target_rate_bps(), 1e6);
  EXPECT_GE(g.target_rate_bps(), 200e3);
}

TEST(Nada, RampsUpWhenUncongested) {
  Nada n;
  const double start = n.target_rate_bps();
  std::uint16_t seq = 0;
  for (int w = 0; w < 30; ++w) {
    n.on_feedback(feedback_window(w * 100, 10, 20.0, 0.0, seq), 0.0,
                  at(w * 100 + 100));
  }
  EXPECT_GT(n.target_rate_bps(), 2.0 * start);
}

TEST(Nada, BacksOffUnderQueuingDelay) {
  Nada n;
  std::uint16_t seq = 0;
  for (int w = 0; w < 30; ++w) {
    n.on_feedback(feedback_window(w * 100, 10, 20.0, 0.0, seq), 0.0,
                  at(w * 100 + 100));
  }
  const double before = n.target_rate_bps();
  for (int w = 30; w < 60; ++w) {
    n.on_feedback(feedback_window(w * 100, 10, 150.0, 0.0, seq), 0.0,
                  at(w * 100 + 100));
  }
  EXPECT_LT(n.target_rate_bps(), before);
}

TEST(Nada, LossPenaltyReducesRate) {
  Nada n;
  std::uint16_t seq = 0;
  for (int w = 0; w < 30; ++w) {
    n.on_feedback(feedback_window(w * 100, 10, 20.0, 0.0, seq), 0.0,
                  at(w * 100 + 100));
  }
  const double before = n.target_rate_bps();
  for (int w = 30; w < 40; ++w) {
    n.on_feedback(feedback_window(w * 100, 10, 20.0, 0.0, seq), 0.2,
                  at(w * 100 + 100));
  }
  EXPECT_LT(n.target_rate_bps(), before);
}

TEST(Scream, RampsUpBelowDelayTarget) {
  Scream sc;
  const double start = sc.target_rate_bps();
  std::uint16_t seq = 0;
  for (int w = 0; w < 60; ++w) {
    // 20 ms OWD, constant: queuing delay ~0 << 60 ms target.
    sc.on_feedback(feedback_window(w * 100, 10, 20.0, 0.0, seq), 0.0,
                   at(w * 100 + 100));
  }
  EXPECT_GT(sc.target_rate_bps(), 2.0 * start);
}

TEST(Scream, BacksOffAboveDelayTarget) {
  Scream sc;
  std::uint16_t seq = 0;
  for (int w = 0; w < 60; ++w) {
    sc.on_feedback(feedback_window(w * 100, 10, 20.0, 0.0, seq), 0.0,
                   at(w * 100 + 100));
  }
  const double before = sc.target_rate_bps();
  // Queuing delay jumps 150 ms above the base: well past the 60 ms target.
  for (int w = 60; w < 90; ++w) {
    sc.on_feedback(feedback_window(w * 100, 10, 170.0, 0.0, seq), 0.0,
                   at(w * 100 + 100));
  }
  EXPECT_LT(sc.target_rate_bps(), 0.5 * before);
}

TEST(Scream, LossEpisodeCutsOnce) {
  Scream sc;
  std::uint16_t seq = 0;
  for (int w = 0; w < 60; ++w) {
    sc.on_feedback(feedback_window(w * 100, 10, 20.0, 0.0, seq), 0.0,
                   at(w * 100 + 100));
  }
  const double before = sc.target_rate_bps();
  sc.on_feedback(feedback_window(6000, 10, 20.0, 0.0, seq), 0.3, at(6100));
  const double after_one = sc.target_rate_bps();
  EXPECT_LT(after_one, before);
  // Continued loss within the same episode must not keep cutting 0.8x
  // per feedback (that would collapse to the floor in under a second).
  sc.on_feedback(feedback_window(6100, 10, 20.0, 0.0, seq), 0.3, at(6200));
  EXPECT_GT(sc.target_rate_bps(), 0.7 * after_one);
}

TEST(Scream, BaseDelayTracksRouteChange) {
  Scream sc;
  std::uint16_t seq = 0;
  for (int w = 0; w < 30; ++w) {
    sc.on_feedback(feedback_window(w * 100, 10, 120.0, 0.0, seq), 0.0,
                   at(w * 100 + 100));
  }
  // A constant 120 ms OWD is a *base* delay, not queuing delay: SCReAM
  // must still be growing (base tracked to ~120 ms).
  EXPECT_NEAR(sc.base_owd_ms(), 120.0, 15.0);
  const double rate_long_path = sc.target_rate_bps();
  EXPECT_GT(rate_long_path, 1e6);
}

TEST(Names, AreStable) {
  EXPECT_EQ(Cubic().name(), "cubic");
  EXPECT_EQ(Copa().name(), "copa");
  EXPECT_EQ(Bbr().name(), "bbr");
  EXPECT_EQ(AbcSender().name(), "abc");
}

}  // namespace
}  // namespace zhuge::cca
