// End-to-end integration tests for the scenario harness: smoke coverage
// of every protocol x AP-mode x qdisc combination, determinism, and the
// headline Zhuge behaviour on a controlled bandwidth drop.

#include <gtest/gtest.h>

#include "app/scenario.hpp"
#include "trace/synthetic.hpp"

namespace zhuge::app {
namespace {

using sim::Duration;
using sim::TimePoint;
using namespace sim::literals;

trace::Trace steady_trace() { return trace::constant_trace(20e6, 30_s); }

ScenarioConfig base_config(const trace::Trace& tr) {
  ScenarioConfig cfg;
  cfg.channel_trace = &tr;
  cfg.duration = 20_s;
  cfg.warmup = 3_s;
  cfg.seed = 5;
  return cfg;
}

struct Combo {
  Protocol protocol;
  ApMode mode;
  QdiscKind qdisc;
};

class ScenarioSmokeTest : public ::testing::TestWithParam<Combo> {};

TEST_P(ScenarioSmokeTest, RunsAndDeliversVideo) {
  const auto tr = steady_trace();
  ScenarioConfig cfg = base_config(tr);
  cfg.protocol = GetParam().protocol;
  cfg.ap.mode = GetParam().mode;
  cfg.ap.qdisc = GetParam().qdisc;
  if (cfg.protocol == Protocol::kTcp && cfg.ap.mode == ApMode::kAbc) {
    cfg.tcp_cca = TcpCcaKind::kAbc;
  }
  const auto r = run_scenario(cfg);
  const auto& f = r.primary();
  // A clean 20 Mbps channel must deliver nearly all frames with low delay.
  EXPECT_GT(f.frames_decoded, 300u);
  EXPECT_LT(f.network_rtt_ms.quantile(0.5), 150.0);
  EXPECT_GT(f.goodput_bps, 1e6);
  EXPECT_GT(f.frame_rate_fps.quantile(0.5), 20.0);
}

INSTANTIATE_TEST_SUITE_P(
    Combos, ScenarioSmokeTest,
    ::testing::Values(
        Combo{Protocol::kRtp, ApMode::kNone, QdiscKind::kFifo},
        Combo{Protocol::kRtp, ApMode::kNone, QdiscKind::kCoDel},
        Combo{Protocol::kRtp, ApMode::kNone, QdiscKind::kFqCoDel},
        Combo{Protocol::kRtp, ApMode::kZhuge, QdiscKind::kFifo},
        Combo{Protocol::kRtp, ApMode::kZhuge, QdiscKind::kCoDel},
        Combo{Protocol::kTcp, ApMode::kNone, QdiscKind::kFifo},
        Combo{Protocol::kTcp, ApMode::kZhuge, QdiscKind::kFifo},
        Combo{Protocol::kTcp, ApMode::kFastAck, QdiscKind::kFifo},
        Combo{Protocol::kTcp, ApMode::kAbc, QdiscKind::kFifo}));

TEST(Scenario, DeterministicForSameSeed) {
  const auto tr = trace::make_trace(trace::TraceKind::kOfficeWifi, 3, 20_s);
  ScenarioConfig cfg = base_config(tr);
  cfg.protocol = Protocol::kRtp;
  cfg.ap.mode = ApMode::kZhuge;
  const auto a = run_scenario(cfg);
  const auto b = run_scenario(cfg);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_DOUBLE_EQ(a.primary().goodput_bps, b.primary().goodput_bps);
  EXPECT_DOUBLE_EQ(a.primary().network_rtt_ms.quantile(0.99),
                   b.primary().network_rtt_ms.quantile(0.99));
  EXPECT_EQ(a.primary().frames_decoded, b.primary().frames_decoded);
}

TEST(Scenario, SeedChangesOutcome) {
  const auto tr = trace::make_trace(trace::TraceKind::kOfficeWifi, 3, 20_s);
  ScenarioConfig cfg = base_config(tr);
  const auto a = run_scenario(cfg);
  cfg.seed = 6;
  const auto b = run_scenario(cfg);
  EXPECT_NE(a.events_executed, b.events_executed);
}

TEST(Scenario, TcpCcaVariantsAllRun) {
  const auto tr = steady_trace();
  for (TcpCcaKind cca : {TcpCcaKind::kCopa, TcpCcaKind::kBbr, TcpCcaKind::kCubic}) {
    ScenarioConfig cfg = base_config(tr);
    cfg.protocol = Protocol::kTcp;
    cfg.tcp_cca = cca;
    const auto r = run_scenario(cfg);
    EXPECT_GT(r.primary().frames_decoded, 250u) << static_cast<int>(cca);
  }
}

TEST(Scenario, NadaAndScreamVariantsRun) {
  const auto tr = steady_trace();
  for (const auto cca : {transport::RtpCca::kNada, transport::RtpCca::kScream}) {
    ScenarioConfig cfg = base_config(tr);
    cfg.protocol = Protocol::kRtp;
    cfg.rtp_cca = cca;
    const auto r = run_scenario(cfg);
    EXPECT_GT(r.primary().frames_decoded, 300u) << static_cast<int>(cca);
    EXPECT_GT(r.primary().goodput_bps, 1e6) << static_cast<int>(cca);
  }
}

TEST(Scenario, CellularLinkRuns) {
  const auto tr = trace::make_trace(trace::TraceKind::kCity4G, 3, 20_s);
  ScenarioConfig cfg = base_config(tr);
  cfg.ap.link = LinkKind::kCellular;
  for (ApMode mode : {ApMode::kNone, ApMode::kZhuge}) {
    cfg.ap.mode = mode;
    const auto r = run_scenario(cfg);
    EXPECT_GT(r.primary().frames_decoded, 300u);
  }
}

TEST(Scenario, CompetingFlowsDegradeRtc) {
  const auto tr = steady_trace();
  ScenarioConfig cfg = base_config(tr);
  cfg.protocol = Protocol::kRtp;
  const auto clean = run_scenario(cfg);
  cfg.competing_bulk_flows = 8;
  const auto contended = run_scenario(cfg);
  // Bulk CUBIC flows through the same FIFO must hurt the RTC flow's RTT.
  EXPECT_GT(contended.primary().network_rtt_ms.quantile(0.9),
            clean.primary().network_rtt_ms.quantile(0.9));
}

TEST(Scenario, InterferersReduceThroughput) {
  ScenarioConfig cfg;
  cfg.channel_trace = nullptr;  // PHY mode
  cfg.mcs_index = 3;            // 26 Mbps
  cfg.duration = 20_s;
  cfg.warmup = 3_s;
  cfg.interferers = 30;
  const auto noisy = run_scenario(cfg);
  cfg.interferers = 0;
  const auto clean = run_scenario(cfg);
  EXPECT_LT(noisy.primary().goodput_bps, clean.primary().goodput_bps);
  EXPECT_GT(noisy.primary().network_rtt_ms.quantile(0.9),
            clean.primary().network_rtt_ms.quantile(0.9));
}

TEST(Scenario, ZhugeCutsDegradationAfterAbwDrop) {
  // The paper's headline microbenchmark (Fig. 14): 30 Mbps -> 3 Mbps.
  const auto tr = trace::step_trace(30e6, 3e6, 20_s, 40_s);
  ScenarioConfig cfg;
  cfg.channel_trace = &tr;
  cfg.duration = 40_s;
  cfg.warmup = 3_s;
  cfg.seed = 3;
  cfg.video.max_bitrate_bps = 40e6;        // let the CCA fill the link
  cfg.ap.queue_limit_bytes = 100 * 1500;   // NS-3-style bottleneck buffer

  auto degradation = [&](ApMode mode, Protocol proto) {
    cfg.ap.mode = mode;
    cfg.protocol = proto;
    const auto r = run_scenario(cfg);
    return r.rtt_series_ms
        .time_above(200.0, TimePoint::zero() + 20_s, TimePoint::zero() + 40_s)
        .to_seconds();
  };
  const double rtp_base = degradation(ApMode::kNone, Protocol::kRtp);
  const double rtp_zhuge = degradation(ApMode::kZhuge, Protocol::kRtp);
  EXPECT_LT(rtp_zhuge, rtp_base);  // the shorter control loop must pay off
  EXPECT_GT(rtp_base, 0.5);        // the drop visibly hurts the baseline
}

TEST(Scenario, ZhugePredictionErrorIsBounded) {
  const auto tr = trace::make_trace(trace::TraceKind::kRestaurantWifi, 3, 30_s);
  ScenarioConfig cfg = base_config(tr);
  cfg.duration = 30_s;
  cfg.ap.mode = ApMode::kZhuge;
  const auto r = run_scenario(cfg);
  ASSERT_GT(r.prediction_error_ms.count(), 1000u);
  // Paper Fig. 19: most predictions err well below the 50 ms RTT.
  EXPECT_LT(r.prediction_error_ms.quantile(0.5), 25.0);
}

TEST(Scenario, FairnessBetweenTwoOptimisedFlows) {
  const auto tr = steady_trace();
  ScenarioConfig cfg = base_config(tr);
  cfg.protocol = Protocol::kRtp;
  cfg.rtc_flows = 2;
  cfg.ap.mode = ApMode::kZhuge;
  const auto r = run_scenario(cfg);
  ASSERT_EQ(r.flows.size(), 2u);
  const double a = r.flows[0].goodput_bps;
  const double b = r.flows[1].goodput_bps;
  EXPECT_GT(std::min(a, b) / std::max(a, b), 0.8);
}

TEST(Scenario, MixedOptimisationDoesNotStarveTheOther) {
  const auto tr = steady_trace();
  ScenarioConfig cfg = base_config(tr);
  cfg.protocol = Protocol::kRtp;
  cfg.rtc_flows = 2;
  cfg.ap.mode = ApMode::kZhuge;
  cfg.optimize_flow = {true, false};  // paper Fig. 20 bar (b)
  const auto r = run_scenario(cfg);
  const double a = r.flows[0].goodput_bps;
  const double b = r.flows[1].goodput_bps;
  EXPECT_GT(std::min(a, b) / std::max(a, b), 0.75);
}

TEST(Scenario, ScpAndMcsScenariosRun) {
  ScenarioConfig cfg;
  cfg.mcs_index = 5;
  cfg.duration = 20_s;
  cfg.warmup = 3_s;
  cfg.scp_periodic_competitor = true;
  cfg.mcs_random_switch = true;
  const auto r = run_scenario(cfg);
  EXPECT_GT(r.primary().frames_decoded, 250u);
}

}  // namespace
}  // namespace zhuge::app
