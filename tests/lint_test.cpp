// zlint rule-engine tests: every rule must trip on its known-bad fixture,
// suppression comments must silence it, and the layering DAG must reject
// back-edges. Fixtures live in tests/lint_fixtures/ and are analyzed
// in-process under pretend src/ paths (they are never compiled).

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "zlint.hpp"

namespace {

using zlint::Diagnostic;

std::string fixture(const std::string& name) {
  const std::string path = std::string(ZLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<Diagnostic> lint_as(const std::string& rel_path,
                                const std::string& fixture_name) {
  return zlint::analyze_source(rel_path, fixture(fixture_name));
}

std::size_t count_rule(const std::vector<Diagnostic>& diags,
                       std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const Diagnostic& d) { return d.rule == rule; }));
}

bool any_message_contains(const std::vector<Diagnostic>& diags,
                          std::string_view needle) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.message.find(needle) != std::string::npos;
  });
}

TEST(ZlintMeta, FourRules) {
  const auto& names = zlint::rule_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_NE(std::find(names.begin(), names.end(), "banned-api"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "determinism-hazard"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "float-equality"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "include-layering"),
            names.end());
}

TEST(ZlintBannedApi, EveryBannedSymbolTrips) {
  const auto diags = lint_as("src/core/banned_api.cpp", "banned_api.cpp");
  for (const char* sym :
       {"srand", "'rand()'", "random_device", "system_clock", "steady_clock",
        "high_resolution_clock", "'time()'", "getenv"}) {
    EXPECT_TRUE(any_message_contains(diags, sym)) << "no diagnostic for " << sym;
  }
  // One per banned use: nothing extra from the member function named
  // time() or its call through an object.
  EXPECT_EQ(count_rule(diags, "banned-api"), 8u);
}

TEST(ZlintBannedApi, SuppressionsSilence) {
  const auto diags =
      lint_as("src/core/banned_api.cpp", "banned_api_suppressed.cpp");
  EXPECT_EQ(count_rule(diags, "banned-api"), 0u);
}

TEST(ZlintBannedApi, ToolsAndTestsExempt) {
  EXPECT_EQ(count_rule(lint_as("tools/probe.cpp", "banned_api.cpp"),
                       "banned-api"),
            0u);
  EXPECT_EQ(count_rule(lint_as("tests/probe_test.cpp", "banned_api.cpp"),
                       "banned-api"),
            0u);
  EXPECT_EQ(count_rule(lint_as("bench/fig99.cpp", "banned_api.cpp"),
                       "banned-api"),
            0u);
}

TEST(ZlintDeterminism, IterationTrips) {
  const auto diags =
      lint_as("src/app/determinism.cpp", "determinism_hazard.cpp");
  // Range-for over the unordered_map and the iterator walk over the
  // unordered_set; the point lookup stays silent.
  EXPECT_EQ(count_rule(diags, "determinism-hazard"), 2u);
  EXPECT_TRUE(any_message_contains(diags, "range-for"));
  EXPECT_TRUE(any_message_contains(diags, "iterator walk"));
}

TEST(ZlintDeterminism, SuppressionSilences) {
  const auto diags = lint_as("src/app/determinism.cpp",
                             "determinism_hazard_suppressed.cpp");
  EXPECT_EQ(count_rule(diags, "determinism-hazard"), 0u);
}

TEST(ZlintDeterminism, ObsLayerExempt) {
  // obs is presentation-only; its exporters may iterate however they like.
  const auto diags =
      lint_as("src/obs/determinism.cpp", "determinism_hazard.cpp");
  EXPECT_EQ(count_rule(diags, "determinism-hazard"), 0u);
}

TEST(ZlintFloatEquality, ExactComparisonsTrip) {
  const auto diags = lint_as("src/stats/float_eq.cpp", "float_equality.cpp");
  // Three floating comparisons; int and pointer comparisons stay silent.
  EXPECT_EQ(count_rule(diags, "float-equality"), 3u);
}

TEST(ZlintFloatEquality, SuppressionSilences) {
  const auto diags =
      lint_as("src/stats/float_eq.cpp", "float_equality_suppressed.cpp");
  EXPECT_EQ(count_rule(diags, "float-equality"), 0u);
}

TEST(ZlintLayering, BackEdgesTrip) {
  const auto diags =
      lint_as("src/queue/layering_backedge.cpp", "layering_backedge.cpp");
  ASSERT_EQ(count_rule(diags, "include-layering"), 3u);
  EXPECT_TRUE(any_message_contains(diags, "core/zhuge.hpp"));
  EXPECT_TRUE(any_message_contains(diags, "app/scenario.hpp"));
  EXPECT_TRUE(any_message_contains(diags, "tests/"));
}

TEST(ZlintLayering, BinariesMayIncludeAnyLayer) {
  // The same includes are all legal from tools/ and bench/ (except the
  // tests/ include, which stays forbidden everywhere).
  const auto diags =
      lint_as("tools/layering_backedge.cpp", "layering_backedge.cpp");
  EXPECT_EQ(count_rule(diags, "include-layering"), 1u);
  EXPECT_TRUE(any_message_contains(diags, "tests/"));
}

TEST(ZlintLayering, DagSpotChecks) {
  // Downward edges.
  EXPECT_TRUE(zlint::layer_edge_allowed("app", "core"));
  EXPECT_TRUE(zlint::layer_edge_allowed("core", "queue"));
  EXPECT_TRUE(zlint::layer_edge_allowed("transport", "cca"));
  EXPECT_TRUE(zlint::layer_edge_allowed("queue", "obs"));
  EXPECT_TRUE(zlint::layer_edge_allowed("wireless", "trace"));
  // Own layer.
  EXPECT_TRUE(zlint::layer_edge_allowed("sim", "sim"));
  // Back-edges / upward skips.
  EXPECT_FALSE(zlint::layer_edge_allowed("core", "app"));
  EXPECT_FALSE(zlint::layer_edge_allowed("sim", "net"));
  EXPECT_FALSE(zlint::layer_edge_allowed("obs", "queue"));
  EXPECT_FALSE(zlint::layer_edge_allowed("queue", "core"));
  EXPECT_FALSE(zlint::layer_edge_allowed("cca", "transport"));
  EXPECT_FALSE(zlint::layer_edge_allowed("net", "queue"));
  // Binaries sit above everything; nothing may reach into them.
  EXPECT_TRUE(zlint::layer_edge_allowed("tools", "app"));
  EXPECT_TRUE(zlint::layer_edge_allowed("tests", "app"));
  EXPECT_FALSE(zlint::layer_edge_allowed("app", "tools"));
  EXPECT_FALSE(zlint::layer_edge_allowed("tools", "tests"));
}

TEST(ZlintClean, CleanFileIsSilent) {
  for (const char* path :
       {"src/app/clean.cpp", "src/sim/clean.cpp", "src/queue/clean.cpp"}) {
    const auto diags = lint_as(path, "clean.cpp");
    EXPECT_TRUE(diags.empty())
        << path << ": " << (diags.empty() ? "" : zlint::to_string(diags[0]));
  }
}

TEST(ZlintFormat, DiagnosticToString) {
  const Diagnostic d{"src/app/x.cpp", 12, "banned-api", "msg"};
  EXPECT_EQ(zlint::to_string(d), "src/app/x.cpp:12: banned-api: msg");
}

}  // namespace
