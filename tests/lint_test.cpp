// zlint rule-engine tests: every rule must trip on its known-bad fixture,
// suppression comments must silence it, and the layering DAG must reject
// back-edges. Fixtures live in tests/lint_fixtures/ and are analyzed
// in-process under pretend src/ paths (they are never compiled).

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "zlint.hpp"

namespace {

using zlint::Diagnostic;

std::string fixture(const std::string& name) {
  const std::string path = std::string(ZLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<Diagnostic> lint_as(const std::string& rel_path,
                                const std::string& fixture_name) {
  return zlint::analyze_source(rel_path, fixture(fixture_name));
}

std::size_t count_rule(const std::vector<Diagnostic>& diags,
                       std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [&](const Diagnostic& d) { return d.rule == rule; }));
}

bool any_message_contains(const std::vector<Diagnostic>& diags,
                          std::string_view needle) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.message.find(needle) != std::string::npos;
  });
}

TEST(ZlintMeta, NineRules) {
  const auto& names = zlint::rule_names();
  ASSERT_EQ(names.size(), 9u);
  for (const char* rule :
       {"banned-api", "determinism-hazard", "float-equality",
        "include-layering", "rng-substream", "shared-mutable-state",
        "time-unit", "include-graph", "bad-suppression"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), rule), names.end())
        << "missing rule: " << rule;
  }
}

TEST(ZlintBannedApi, EveryBannedSymbolTrips) {
  const auto diags = lint_as("src/core/banned_api.cpp", "banned_api.cpp");
  for (const char* sym :
       {"srand", "'rand()'", "random_device", "system_clock", "steady_clock",
        "high_resolution_clock", "'time()'", "getenv"}) {
    EXPECT_TRUE(any_message_contains(diags, sym)) << "no diagnostic for " << sym;
  }
  // One per banned use: nothing extra from the member function named
  // time() or its call through an object.
  EXPECT_EQ(count_rule(diags, "banned-api"), 8u);
}

TEST(ZlintBannedApi, SuppressionsSilence) {
  const auto diags =
      lint_as("src/core/banned_api.cpp", "banned_api_suppressed.cpp");
  EXPECT_EQ(count_rule(diags, "banned-api"), 0u);
}

TEST(ZlintBannedApi, ToolsAndTestsExempt) {
  EXPECT_EQ(count_rule(lint_as("tools/probe.cpp", "banned_api.cpp"),
                       "banned-api"),
            0u);
  EXPECT_EQ(count_rule(lint_as("tests/probe_test.cpp", "banned_api.cpp"),
                       "banned-api"),
            0u);
  EXPECT_EQ(count_rule(lint_as("bench/fig99.cpp", "banned_api.cpp"),
                       "banned-api"),
            0u);
}

TEST(ZlintDeterminism, IterationTrips) {
  const auto diags =
      lint_as("src/app/determinism.cpp", "determinism_hazard.cpp");
  // Range-for over the unordered_map and the iterator walk over the
  // unordered_set; the point lookup stays silent.
  EXPECT_EQ(count_rule(diags, "determinism-hazard"), 2u);
  EXPECT_TRUE(any_message_contains(diags, "range-for"));
  EXPECT_TRUE(any_message_contains(diags, "iterator walk"));
}

TEST(ZlintDeterminism, SuppressionSilences) {
  const auto diags = lint_as("src/app/determinism.cpp",
                             "determinism_hazard_suppressed.cpp");
  EXPECT_EQ(count_rule(diags, "determinism-hazard"), 0u);
}

TEST(ZlintDeterminism, ObsLayerExempt) {
  // obs is presentation-only; its exporters may iterate however they like.
  const auto diags =
      lint_as("src/obs/determinism.cpp", "determinism_hazard.cpp");
  EXPECT_EQ(count_rule(diags, "determinism-hazard"), 0u);
}

TEST(ZlintFloatEquality, ExactComparisonsTrip) {
  const auto diags = lint_as("src/stats/float_eq.cpp", "float_equality.cpp");
  // Three floating comparisons; int and pointer comparisons stay silent.
  EXPECT_EQ(count_rule(diags, "float-equality"), 3u);
}

TEST(ZlintFloatEquality, SuppressionSilences) {
  const auto diags =
      lint_as("src/stats/float_eq.cpp", "float_equality_suppressed.cpp");
  EXPECT_EQ(count_rule(diags, "float-equality"), 0u);
}

TEST(ZlintLayering, BackEdgesTrip) {
  const auto diags =
      lint_as("src/queue/layering_backedge.cpp", "layering_backedge.cpp");
  ASSERT_EQ(count_rule(diags, "include-layering"), 3u);
  EXPECT_TRUE(any_message_contains(diags, "core/zhuge.hpp"));
  EXPECT_TRUE(any_message_contains(diags, "app/scenario.hpp"));
  EXPECT_TRUE(any_message_contains(diags, "tests/"));
}

TEST(ZlintLayering, BinariesMayIncludeAnyLayer) {
  // The same includes are all legal from tools/ and bench/ (except the
  // tests/ include, which stays forbidden everywhere).
  const auto diags =
      lint_as("tools/layering_backedge.cpp", "layering_backedge.cpp");
  EXPECT_EQ(count_rule(diags, "include-layering"), 1u);
  EXPECT_TRUE(any_message_contains(diags, "tests/"));
}

TEST(ZlintLayering, DagSpotChecks) {
  // Downward edges.
  EXPECT_TRUE(zlint::layer_edge_allowed("app", "core"));
  EXPECT_TRUE(zlint::layer_edge_allowed("core", "queue"));
  EXPECT_TRUE(zlint::layer_edge_allowed("transport", "cca"));
  EXPECT_TRUE(zlint::layer_edge_allowed("queue", "obs"));
  EXPECT_TRUE(zlint::layer_edge_allowed("wireless", "trace"));
  // Own layer.
  EXPECT_TRUE(zlint::layer_edge_allowed("sim", "sim"));
  // Back-edges / upward skips.
  EXPECT_FALSE(zlint::layer_edge_allowed("core", "app"));
  EXPECT_FALSE(zlint::layer_edge_allowed("sim", "net"));
  EXPECT_FALSE(zlint::layer_edge_allowed("obs", "queue"));
  EXPECT_FALSE(zlint::layer_edge_allowed("queue", "core"));
  EXPECT_FALSE(zlint::layer_edge_allowed("cca", "transport"));
  EXPECT_FALSE(zlint::layer_edge_allowed("net", "queue"));
  // Binaries sit above everything; nothing may reach into them.
  EXPECT_TRUE(zlint::layer_edge_allowed("tools", "app"));
  EXPECT_TRUE(zlint::layer_edge_allowed("tests", "app"));
  EXPECT_FALSE(zlint::layer_edge_allowed("app", "tools"));
  EXPECT_FALSE(zlint::layer_edge_allowed("tools", "tests"));
}

TEST(ZlintClean, CleanFileIsSilent) {
  for (const char* path :
       {"src/app/clean.cpp", "src/sim/clean.cpp", "src/queue/clean.cpp"}) {
    const auto diags = lint_as(path, "clean.cpp");
    EXPECT_TRUE(diags.empty())
        << path << ": " << (diags.empty() ? "" : zlint::to_string(diags[0]));
  }
}

TEST(ZlintFormat, DiagnosticToString) {
  const Diagnostic d{"src/app/x.cpp", 12, "banned-api", "msg"};
  EXPECT_EQ(zlint::to_string(d), "src/app/x.cpp:12: banned-api: msg");
}

// ---------------------------------------------------------------------------
// Suppression grammar: own-line comments cover the whole next statement.
// ---------------------------------------------------------------------------

TEST(ZlintSuppression, OwnLineCoversMultiLineStatement) {
  // Both `==` tokens live on different lines of one statement; the single
  // own-line suppression above it must silence them all.
  const auto diags =
      lint_as("src/stats/multi.cpp", "suppressed_multiline.cpp");
  EXPECT_EQ(count_rule(diags, "float-equality"), 0u)
      << zlint::to_string(diags.front());
}

TEST(ZlintSuppression, WithoutCommentTheSameStatementTrips) {
  // Control: strip the zlint-allow line and both comparisons must fire,
  // proving the fixture actually exercises continuation-line coverage.
  std::string text = fixture("suppressed_multiline.cpp");
  const auto at = text.find("  // zlint-allow");
  ASSERT_NE(at, std::string::npos);
  const auto eol = text.find('\n', at);
  text.erase(at, eol - at + 1);
  const auto diags = zlint::analyze_source("src/stats/multi.cpp", text);
  EXPECT_EQ(count_rule(diags, "float-equality"), 2u);
}

// ---------------------------------------------------------------------------
// Project mode (phase 1 + 2 in-process).
// ---------------------------------------------------------------------------

using zlint::ProjectFile;

std::vector<Diagnostic> lint_project(
    const std::vector<std::pair<std::string, std::string>>& path_fixture,
    const std::vector<ProjectFile>& extra = {}) {
  std::vector<ProjectFile> files;
  for (const auto& [rel, fix] : path_fixture) files.push_back({rel, fixture(fix)});
  files.insert(files.end(), extra.begin(), extra.end());
  return zlint::analyze_project(files);
}

TEST(ZlintRngSubstream, RawLiteralsTrip) {
  const auto diags = lint_project(
      {{"src/trace/rng_raw.cpp", "substream_raw_literal.cpp"}});
  // Declaration form and make_unique form.
  EXPECT_EQ(count_rule(diags, "rng-substream"), 2u);
  EXPECT_TRUE(any_message_contains(diags, "raw integer literal 42"));
  EXPECT_TRUE(any_message_contains(diags, "raw integer literal 43"));
}

TEST(ZlintRngSubstream, RegisteredConstantsAreClean) {
  const auto diags = lint_project(
      {{"src/sim/substreams.hpp", "substreams_ok.hpp"},
       {"src/trace/rng_clean.cpp", "substream_clean.cpp"}});
  EXPECT_EQ(count_rule(diags, "rng-substream"), 0u)
      << zlint::to_string(diags.front());
  EXPECT_EQ(count_rule(diags, "include-graph"), 0u);
}

TEST(ZlintRngSubstream, RegistryCollisionTrips) {
  const auto diags = lint_project(
      {{"src/sim/substreams.hpp", "substreams_collision.hpp"}},
      {{"src/sim/collision_tu.cpp", "#include \"sim/substreams.hpp\"\n"}});
  ASSERT_EQ(count_rule(diags, "rng-substream"), 1u);
  EXPECT_TRUE(any_message_contains(diags, "substream collision"));
  EXPECT_TRUE(any_message_contains(diags, "kDemoChurn"));
  EXPECT_TRUE(any_message_contains(diags, "kDemoTrace"));
}

TEST(ZlintRngSubstream, UnknownConstantTripsOnlyWithRegistry) {
  const ProjectFile use{
      "src/trace/rng_unknown.cpp",
      "#include \"sim/substreams.hpp\"\n"
      "namespace zhuge::trace {\n"
      "inline double f(unsigned long long seed) {\n"
      "  sim::Rng rng(seed, sim::substreams::kNotRegistered);\n"
      "  return rng.next_double();\n"
      "}\n"
      "}  // namespace zhuge::trace\n"};
  const auto with_registry =
      lint_project({{"src/sim/substreams.hpp", "substreams_ok.hpp"}}, {use});
  EXPECT_EQ(count_rule(with_registry, "rng-substream"), 1u);
  EXPECT_TRUE(any_message_contains(with_registry, "kNotRegistered"));
  // Without a registry in the scanned set there is nothing to check names
  // against — named expressions pass (single-file sets stay usable).
  const auto without_registry = zlint::analyze_project({use});
  EXPECT_EQ(count_rule(without_registry, "rng-substream"), 0u);
}

TEST(ZlintSharedMutable, GlobalsAndStaticLocalsTrip) {
  const auto diags =
      lint_project({{"src/core/globals.cpp", "mutable_global.cpp"}});
  ASSERT_EQ(count_rule(diags, "shared-mutable-state"), 2u);
  EXPECT_TRUE(any_message_contains(diags, "g_packets_seen"));
  EXPECT_TRUE(any_message_contains(diags, "non-const static local 'calls'"));
}

TEST(ZlintSharedMutable, ConstantsAndLocalsAreClean) {
  const auto diags =
      lint_project({{"src/core/globals.cpp", "mutable_global_clean.cpp"}});
  EXPECT_EQ(count_rule(diags, "shared-mutable-state"), 0u)
      << zlint::to_string(diags.front());
}

TEST(ZlintTimeUnit, MixedUnitsAndFloatNsTrip) {
  const auto diags =
      lint_project({{"src/net/budget.cpp", "time_unit_mix.cpp"}});
  // budget_s - rtt_ms, `double total_ns`, total_ns += step_ns.
  ASSERT_EQ(count_rule(diags, "time-unit"), 3u);
  EXPECT_TRUE(any_message_contains(diags, "mixed time units"));
  EXPECT_TRUE(any_message_contains(diags, "stores nanoseconds in double"));
  EXPECT_TRUE(any_message_contains(diags, "accumulates nanosecond value"));
}

TEST(ZlintTimeUnit, SameUnitsAndConversionsAreClean) {
  const auto diags =
      lint_project({{"src/net/budget.cpp", "time_unit_clean.cpp"}});
  EXPECT_EQ(count_rule(diags, "time-unit"), 0u)
      << zlint::to_string(diags.front());
}

TEST(ZlintTimeUnit, StatsLayerMayAccumulateInDoubles) {
  // The same float-accumulation fixture is legal under stats/ (summary
  // statistics legitimately live in doubles); the ident-mix still trips.
  const auto diags =
      lint_project({{"src/stats/budget.cpp", "time_unit_mix.cpp"}});
  EXPECT_EQ(count_rule(diags, "time-unit"), 1u);
  EXPECT_TRUE(any_message_contains(diags, "mixed time units"));
}

TEST(ZlintIncludeGraph, CycleTrips) {
  const auto diags = lint_project(
      {{"src/net/cycle_a.hpp", "include_cycle_a.hpp"},
       {"src/net/cycle_b.hpp", "include_cycle_b.hpp"}},
      {{"src/net/cycle_tu.cpp", "#include \"net/cycle_a.hpp\"\n"}});
  ASSERT_EQ(count_rule(diags, "include-graph"), 1u);
  EXPECT_TRUE(any_message_contains(diags, "include cycle"));
  EXPECT_TRUE(any_message_contains(diags, "src/net/cycle_a.hpp"));
  EXPECT_TRUE(any_message_contains(diags, "src/net/cycle_b.hpp"));
}

TEST(ZlintIncludeGraph, OrphanHeaderTrips) {
  const auto diags = lint_project(
      {{"src/net/orphan.hpp", "orphan.hpp"},
       {"src/net/leaf.hpp", "transitive_leaf.hpp"}},
      {{"src/net/user_tu.cpp", "#include \"net/leaf.hpp\"\n"}});
  ASSERT_EQ(count_rule(diags, "include-graph"), 1u);
  EXPECT_EQ(diags.front().path, "src/net/orphan.hpp");
  EXPECT_TRUE(any_message_contains(diags, "unreachable"));
}

TEST(ZlintIncludeGraph, TransitiveLayerViolationTrips) {
  // rtc -> stats is legal, stats -> net is locally suppressed; only the
  // project pass can tell rtc that it now transitively reaches net.
  const auto diags = lint_project(
      {{"src/rtc/user.hpp", "transitive_user.hpp"},
       {"src/stats/mid.hpp", "transitive_mid.hpp"},
       {"src/net/leaf.hpp", "transitive_leaf.hpp"}},
      // TUs live in tests/ (layer-exempt) so the only transitive finding
      // is the header's own.
      {{"tests/user_tu.cpp", "#include \"rtc/user.hpp\"\n"},
       {"tests/leaf_tu.cpp", "#include \"net/leaf.hpp\"\n"}});
  EXPECT_EQ(count_rule(diags, "include-layering"), 0u);  // suppressed in mid
  ASSERT_EQ(count_rule(diags, "include-graph"), 1u);
  const auto& d = diags.front();
  EXPECT_EQ(d.path, "src/rtc/user.hpp");
  EXPECT_TRUE(any_message_contains(diags, "transitively includes"));
  EXPECT_TRUE(any_message_contains(
      diags, "src/rtc/user.hpp -> src/stats/mid.hpp -> src/net/leaf.hpp"));
}

TEST(ZlintBadSuppression, ReasonlessAllowTripsInProjectMode) {
  const auto diags = lint_project(
      {{"src/stats/loose.cpp", "bad_suppression.cpp"}});
  // The float-equality is still silenced; the reasonless clause itself is
  // the diagnostic.
  EXPECT_EQ(count_rule(diags, "float-equality"), 0u);
  ASSERT_EQ(count_rule(diags, "bad-suppression"), 1u);
  EXPECT_TRUE(any_message_contains(diags, "without a reason"));
}

TEST(ZlintFacts, ExtractorSeesRegistryAndUses) {
  const auto facts = zlint::extract_facts(
      "src/sim/substreams.hpp", fixture("substreams_ok.hpp"));
  ASSERT_EQ(facts.stream_defs.size(), 2u);
  EXPECT_EQ(facts.stream_defs[0].name, "kDemoTrace");
  EXPECT_EQ(facts.stream_defs[0].value, 9);
  EXPECT_EQ(facts.stream_defs[1].name, "kDemoMedium");
  EXPECT_EQ(facts.stream_defs[1].value, 17);

  const auto uses = zlint::extract_facts("src/trace/rng_clean.cpp",
                                         fixture("substream_clean.cpp"));
  ASSERT_EQ(uses.rng_uses.size(), 2u);
  EXPECT_EQ(uses.rng_uses[0].arg, "kDemoTrace");
  EXPECT_FALSE(uses.rng_uses[0].is_literal);
  EXPECT_EQ(uses.layer, "trace");
  EXPECT_TRUE(uses.in_src);
  EXPECT_FALSE(uses.is_header);
}

TEST(ZlintProject, RealTreeShapedSetIsClean) {
  // A miniature project shaped like the real tree: registry + a TU drawing
  // from it + the chain headers all reachable. No diagnostics at all.
  const auto diags = lint_project(
      {{"src/sim/substreams.hpp", "substreams_ok.hpp"},
       {"src/trace/rng_clean.cpp", "substream_clean.cpp"},
       {"src/net/leaf.hpp", "transitive_leaf.hpp"},
       {"src/core/globals.cpp", "mutable_global_clean.cpp"},
       {"src/net/budget.cpp", "time_unit_clean.cpp"}},
      {{"src/net/leaf_tu.cpp", "#include \"net/leaf.hpp\"\n"}});
  EXPECT_TRUE(diags.empty()) << zlint::to_string(diags.front());
}

}  // namespace
