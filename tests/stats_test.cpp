// Unit tests for the statistics primitives: windowed estimators, offline
// distributions, and the time-series degradation metrics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <utility>

#include "sim/random.hpp"
#include "stats/distribution.hpp"
#include "stats/timeseries.hpp"
#include "stats/windowed.hpp"

namespace zhuge::stats {
namespace {

using sim::Duration;
using sim::TimePoint;
using namespace sim::literals;

TimePoint at(std::int64_t ms) { return TimePoint::zero() + Duration::millis(ms); }

TEST(WindowedRate, ComputesRateOverFullWindow) {
  WindowedRate r(40_ms);
  // 1000 bytes every 10 ms = 100 kB/s = 800 kbit/s.
  for (int i = 0; i <= 4; ++i) r.record(at(10 * i), 1000);
  // Window [0,40] holds samples at 0..40 => but t=0 evicted at cutoff.
  const auto rate = r.rate_bps(at(40));
  ASSERT_TRUE(rate.has_value());
  EXPECT_NEAR(*rate, 5000.0 * 8.0 / 0.040, 1e-6);
}

TEST(WindowedRate, QuietPeriodDragsRateDown) {
  WindowedRate r(40_ms);
  r.record(at(0), 4000);
  const double early = *r.rate_bps(at(10));
  const double late = *r.rate_bps(at(39));
  EXPECT_DOUBLE_EQ(early, late);  // denominator is the window, not the span
  EXPECT_FALSE(r.rate_bps(at(100)).has_value());  // everything evicted
}

TEST(WindowedRate, EvictsOldSamples) {
  WindowedRate r(40_ms);
  r.record(at(0), 1000);
  r.record(at(50), 1000);
  const auto rate = r.rate_bps(at(50));
  ASSERT_TRUE(rate.has_value());
  EXPECT_NEAR(*rate, 1000.0 * 8.0 / 0.040, 1e-6);  // only the new sample
}

TEST(WindowedMean, MeanAndEviction) {
  WindowedMean m(40_ms);
  m.record(at(0), 10.0);
  m.record(at(10), 20.0);
  EXPECT_DOUBLE_EQ(*m.mean(at(10)), 15.0);
  EXPECT_DOUBLE_EQ(*m.mean(at(45)), 20.0);  // first sample evicted
  EXPECT_FALSE(m.mean(at(100)).has_value());
}

TEST(WindowedMean, MaxMatchesBruteForceOverRandomizedChurn) {
  // max() is answered from a monotonic deque; this drives a randomized
  // record/evict sequence and checks it against a rescan of a shadow
  // window at every step.
  WindowedMean m(40_ms);
  std::deque<std::pair<TimePoint, double>> shadow;
  sim::Rng rng(99);
  TimePoint t = TimePoint::zero();
  for (int i = 0; i < 20'000; ++i) {
    // Bursty arrivals: mostly sub-ms steps, occasional multi-window gaps
    // that evict everything.
    t += Duration::micros(rng.uniform_int(100) == 0
                              ? 90'000
                              : 1 + rng.uniform_int(900));
    const double v = rng.uniform() * 1000.0 - 500.0;
    m.record(t, v);
    shadow.emplace_back(t, v);
    while (!shadow.empty() && shadow.front().first < t - 40_ms) {
      shadow.pop_front();
    }
    double brute = shadow.front().second;
    for (const auto& [st, sv] : shadow) brute = std::max(brute, sv);
    const auto got = m.max(t);
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(*got, brute) << "at step " << i;
  }
}

TEST(WindowedMean, MaxActivatedLateRebuildsFromLiveWindow) {
  // The max deque is lazily maintained; the first max() call — possibly
  // long after recording started — must rebuild it from the samples
  // still inside the window and stay consistent afterwards.
  WindowedMean m(40_ms);
  std::deque<std::pair<TimePoint, double>> shadow;
  sim::Rng rng(5);
  TimePoint t = TimePoint::zero();
  const auto push = [&] {
    t += Duration::micros(1 + rng.uniform_int(1500));
    const double v = rng.uniform() * 100.0;
    m.record(t, v);
    shadow.emplace_back(t, v);
    while (!shadow.empty() && shadow.front().first < t - 40_ms) {
      shadow.pop_front();
    }
  };
  const auto brute = [&] {
    double best = shadow.front().second;
    for (const auto& [st, sv] : shadow) best = std::max(best, sv);
    return best;
  };
  for (int i = 0; i < 500; ++i) push();  // max() never called: lazy off
  ASSERT_EQ(m.max(t), brute());          // first call rebuilds
  for (int i = 0; i < 500; ++i) {        // stays consistent incrementally
    push();
    ASSERT_EQ(m.max(t), brute());
  }
}

TEST(WindowedMean, LongRunMeanDoesNotDrift) {
  // The running sum gains ~1 ulp of residue per record/evict pair; the
  // periodic exact resummation must keep the reported mean within 1e-9
  // (relative) of a brute-force recomputation even after millions of
  // cycles with wildly mixed magnitudes.
  WindowedMean m(40_ms);
  std::deque<std::pair<TimePoint, double>> shadow;
  sim::Rng rng(7);
  TimePoint t = TimePoint::zero();
  for (int i = 0; i < 2'000'000; ++i) {
    t += Duration::micros(1 + rng.uniform_int(2000));
    // Alternate huge and tiny magnitudes so naive accumulation sheds
    // low-order bits as fast as possible.
    const double v = (i % 2 == 0) ? rng.uniform() * 1e9 : rng.uniform() * 1e-3;
    m.record(t, v);
    shadow.emplace_back(t, v);
    while (!shadow.empty() && shadow.front().first < t - 40_ms) {
      shadow.pop_front();
    }
  }
  double exact_sum = 0.0;
  for (const auto& [st, sv] : shadow) exact_sum += sv;
  const double exact_mean = exact_sum / static_cast<double>(shadow.size());
  const auto got = m.mean(t);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(m.sample_count(), shadow.size());
  EXPECT_NEAR(*got / exact_mean, 1.0, 1e-9);
}

TEST(WindowedMean, ResummationBoundaryExactUnderInterleavedEviction) {
  // The running sum is re-added exactly once every 4096 records. This
  // drives record/evict interleaving straight through several boundaries
  // — including a mass expiry landing *on* the resummation record and
  // one landing immediately before it — and checks three things:
  //  (a) on every record where the resummation just fired, the reported
  //      mean is BITWISE equal to an in-order shadow recomputation (the
  //      resummed sum and the shadow sum perform identical operations in
  //      identical order, so any divergence is a desync, not roundoff);
  //  (b) between boundaries the accumulated residue stays within 1e-9;
  //  (c) the monotonic max ring never desyncs from the sample window
  //      while evictions straddle the boundary.
  constexpr int kResum = 4096;  // mirrors WindowedMean::kResumPeriod
  WindowedMean m(40_ms);
  std::deque<std::pair<TimePoint, double>> shadow;
  sim::Rng rng(23);
  TimePoint t = TimePoint::zero();
  (void)m.max(t);  // activate the lazy max ring from record one

  for (int i = 1; i <= 3 * kResum + 64; ++i) {
    const int phase = i % kResum;
    if (phase == 0 || phase == kResum - 1) {
      // Mass expiry exactly at (and just before) the resummation record:
      // the window empties down to this one sample while the sum is
      // being rebuilt.
      t += Duration::millis(90);
    } else {
      t += Duration::micros(20);  // steady churn: window holds ~2000
    }
    const double v = (i % 2 == 0) ? rng.uniform() * 1e9 : rng.uniform() * 1e-3;
    m.record(t, v);
    shadow.emplace_back(t, v);
    while (!shadow.empty() && shadow.front().first < t - 40_ms) {
      shadow.pop_front();
    }

    ASSERT_EQ(m.sample_count(), shadow.size()) << "window desync at " << i;
    double exact = 0.0;
    double brute_max = shadow.front().second;
    for (const auto& [st, sv] : shadow) {
      exact += sv;
      brute_max = std::max(brute_max, sv);
    }
    const double exact_mean = exact / static_cast<double>(shadow.size());
    const auto got = m.mean(t);
    ASSERT_TRUE(got.has_value());
    if (phase == 0) {
      EXPECT_EQ(*got, exact_mean) << "resummed sum diverged at " << i;
    } else if (phase == kResum - 1) {
      // The mass expiry just cancelled ~2000 samples of ~1e9 magnitude
      // out of the running sum, leaving a survivor of ~1e-3: the shed
      // low-order bits can exceed the true mean many times over, so no
      // relative bound holds here — this record is exactly why the
      // periodic resummation exists (the next record, phase 0, is
      // checked bitwise above). The *absolute* residue must still stay
      // within the ulps accumulated since the last resummation.
      EXPECT_NEAR(*got * static_cast<double>(shadow.size()), exact, 8.0)
          << "cancellation residue unbounded at " << i;
    } else {
      EXPECT_NEAR(*got / exact_mean, 1.0, 1e-9) << "residue blew up at " << i;
    }
    const auto got_max = m.max(t);
    ASSERT_TRUE(got_max.has_value());
    EXPECT_EQ(*got_max, brute_max) << "max ring desync at " << i;
  }
}

TEST(WindowedRate, LongRunTotalsStayExact) {
  // total_bytes_ is integer arithmetic — after a million record/evict
  // cycles the reported rate must equal the brute-force rate exactly,
  // not merely approximately.
  WindowedRate r(40_ms);
  std::deque<std::pair<TimePoint, std::int64_t>> shadow;
  sim::Rng rng(11);
  TimePoint t = TimePoint::zero();
  for (int i = 0; i < 1'000'000; ++i) {
    t += Duration::micros(1 + rng.uniform_int(500));
    const auto bytes = static_cast<std::int64_t>(rng.uniform_int(1500));
    r.record(t, bytes);
    shadow.emplace_back(t, bytes);
    while (!shadow.empty() && shadow.front().first < t - 40_ms) {
      shadow.pop_front();
    }
  }
  std::int64_t exact_total = 0;
  for (const auto& [st, sb] : shadow) exact_total += sb;
  const auto got = r.rate_bps(t);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(r.sample_count(), shadow.size());
  EXPECT_EQ(*got, static_cast<double>(exact_total) * 8.0 / 0.040);
}

TEST(WindowedMax, TracksMaximumWithEviction) {
  WindowedMax m(40_ms);
  m.record(at(0), 5.0);
  m.record(at(10), 9.0);
  m.record(at(20), 3.0);
  EXPECT_DOUBLE_EQ(m.max(at(20)), 9.0);
  EXPECT_DOUBLE_EQ(m.max(at(55)), 3.0);  // 9.0 aged out
  EXPECT_DOUBLE_EQ(m.max(at(100), -1.0), -1.0);
}

TEST(WindowedMin, TracksMinimumWithEviction) {
  WindowedMin m(40_ms);
  m.record(at(0), 5.0);
  m.record(at(10), 2.0);
  m.record(at(20), 7.0);
  EXPECT_DOUBLE_EQ(*m.min(at(20)), 2.0);
  EXPECT_DOUBLE_EQ(*m.min(at(55)), 7.0);
  EXPECT_FALSE(m.min(at(200)).has_value());
}

TEST(WindowedSampler, SamplesOnlyFromWindow) {
  WindowedSampler s(40_ms);
  sim::Rng rng(1);
  s.record(at(0), 1.0);
  s.record(at(10), 2.0);
  for (int i = 0; i < 50; ++i) {
    const auto v = s.sample(at(20), rng);
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(*v == 1.0 || *v == 2.0);
  }
  for (int i = 0; i < 50; ++i) {
    const auto v = s.sample(at(45), rng);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 2.0);  // 1.0 aged out
  }
  EXPECT_FALSE(s.sample(at(100), rng).has_value());
}

TEST(WindowedSampler, MeanMatchesContents) {
  WindowedSampler s(1_s);
  s.record(at(0), 1.0);
  s.record(at(1), 3.0);
  EXPECT_DOUBLE_EQ(*s.mean(at(2)), 2.0);
}

TEST(Ewma, ConvergesTowardInput) {
  Ewma e(0.5);
  EXPECT_FALSE(e.has_value());
  e.record(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  e.record(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
  e.reset();
  EXPECT_FALSE(e.has_value());
}

TEST(Distribution, QuantilesOfKnownData) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) d.add(i);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 100.0);
  EXPECT_NEAR(d.quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(d.quantile(0.99), 99.01, 0.02);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 100.0);
  EXPECT_NEAR(d.mean(), 50.5, 1e-9);
}

TEST(Distribution, TailRatios) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) d.add(i);
  EXPECT_DOUBLE_EQ(d.ratio_above(90.0), 0.10);
  EXPECT_DOUBLE_EQ(d.ratio_below(11.0), 0.10);
  EXPECT_DOUBLE_EQ(d.ccdf(100.0), 0.0);
  EXPECT_DOUBLE_EQ(d.ccdf(0.0), 1.0);
}

TEST(Distribution, EmptyIsSafe) {
  Distribution d;
  EXPECT_TRUE(d.empty());
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.ratio_above(1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);
}

TEST(Distribution, InterleavedAddAndQuery) {
  Distribution d;
  d.add(5.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 5.0);
  d.add(1.0);  // must re-sort lazily
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
}

TEST(Heatmap2D, BinsAreLogSpacedAndRowNormalised) {
  Heatmap2D h(1.0, 256.0, 8);
  EXPECT_EQ(h.bin(1.0), 0u);
  EXPECT_EQ(h.bin(255.0), 7u);
  EXPECT_EQ(h.bin(0.5), 0u);    // clamped
  EXPECT_EQ(h.bin(1000.0), 7u);  // clamped
  h.add(2.0, 2.0);
  h.add(2.5, 2.0);
  h.add(100.0, 2.0);
  const std::size_t row = h.bin(2.0);
  double rowsum = 0;
  for (std::size_t x = 0; x < h.bins(); ++x) rowsum += h.cell_row_normalised(x, row);
  EXPECT_NEAR(rowsum, 1.0, 1e-9);
  EXPECT_NEAR(h.cell_row_normalised(h.bin(2.0), row), 2.0 / 3.0, 1e-9);
}

TEST(TimeSeries, TimeAboveThreshold) {
  TimeSeries ts;
  ts.record(at(0), 100.0);
  ts.record(at(10), 300.0);  // above from 10..20
  ts.record(at(20), 100.0);
  ts.record(at(30), 250.0);  // above from 30..40 (clamped by `to`)
  const Duration above = ts.time_above(200.0, at(0), at(40));
  EXPECT_EQ(above, 20_ms);
}

TEST(TimeSeries, TimeAboveRespectsRange) {
  TimeSeries ts;
  ts.record(at(0), 300.0);
  EXPECT_EQ(ts.time_above(200.0, at(5), at(15)), 10_ms);
}

TEST(TimeSeries, TimeBelow) {
  TimeSeries ts;
  ts.record(at(0), 5.0);
  ts.record(at(10), 15.0);
  EXPECT_EQ(ts.time_below(10.0, at(0), at(20)), 10_ms);
}

TEST(TimeSeries, LastAboveFindsReconvergence) {
  TimeSeries ts;
  ts.record(at(0), 300.0);
  ts.record(at(10), 100.0);
  ts.record(at(20), 300.0);
  ts.record(at(30), 100.0);
  EXPECT_EQ(ts.last_above(200.0, at(0), at(50)), at(30));
  EXPECT_EQ(ts.last_above(400.0, at(0), at(50)), at(0));  // never above
}

TEST(TimeSeries, MeanOverRange) {
  TimeSeries ts;
  ts.record(at(0), 10.0);
  ts.record(at(10), 20.0);
  ts.record(at(20), 30.0);
  EXPECT_DOUBLE_EQ(ts.mean(at(0), at(20)), 20.0);
  EXPECT_DOUBLE_EQ(ts.mean(at(5), at(15)), 20.0);
}

TEST(TimeSeries, TimeWeightedMeanMatchesTimeAboveSemantics) {
  TimeSeries ts;
  // Sample-and-hold: 10 for [0,10), 30 for [10,20), last sample holds to `to`.
  ts.record(at(0), 10.0);
  ts.record(at(10), 30.0);
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(at(0), at(20)), 20.0);
  // Holding tail: 10 ms at 10 + 30 ms at 30 over [0,40).
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(at(0), at(40)), 25.0);
  // Sub-interval clips both segments.
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(at(5), at(15)), 20.0);
}

TEST(TimeSeries, TimeWeightedMeanIgnoresSamplingDensity) {
  TimeSeries ts;
  // Ten rapid-fire samples of 100 in the first ms, then one sample of 0
  // holding for 9 ms: the arithmetic mean is ~91, the time-weighted 10.
  for (int i = 0; i < 10; ++i) ts.record(at(0) + Duration::micros(i * 100), 100.0);
  ts.record(at(1), 0.0);
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(at(0), at(10)), 10.0);
  EXPECT_NEAR(ts.mean(at(0), at(10)), 90.9, 0.1);
}

TEST(TimeSeries, TimeWeightedMeanEmptyWindow) {
  TimeSeries ts;
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(at(0), at(10)), 0.0);  // no samples
  ts.record(at(20), 5.0);
  // Window entirely before the first sample: nothing covered.
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(at(0), at(10)), 0.0);
}

}  // namespace
}  // namespace zhuge::stats
