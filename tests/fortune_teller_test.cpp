// Unit tests for the Zhuge Fortune Teller (§4): qLong / qShort / tx
// estimation, the Eq. 1 burst adjustment, idle-gap filtering, and the
// Fig. 7 reaction shape.

#include <gtest/gtest.h>

#include "core/fortune_teller.hpp"
#include "queue/fifo.hpp"

namespace zhuge::core {
namespace {

using sim::Duration;
using sim::TimePoint;
using namespace sim::literals;

TimePoint at(std::int64_t us) { return TimePoint::zero() + Duration::micros(us); }

TEST(FortuneTeller, UsesFallbacksBeforeAnyDeparture) {
  FortuneTellerConfig cfg;
  cfg.fallback_rate_bps = 8e6;
  cfg.fallback_tx = 2_ms;
  cfg.burst_adjustment = false;
  FortuneTeller ft(cfg);
  // 10 kB queued at the 8 Mbps fallback = 10 ms qLong; + 2 ms fallback tx.
  const auto pred = ft.predict(at(0), 10'000, std::nullopt);
  EXPECT_NEAR(pred.q_long.to_millis(), 10.0, 0.01);
  EXPECT_NEAR(pred.tx.to_millis(), 2.0, 0.01);
  EXPECT_EQ(pred.q_short, Duration::zero());
}

TEST(FortuneTeller, QLongUsesMeasuredTxRate) {
  FortuneTellerConfig cfg;
  cfg.burst_adjustment = false;
  FortuneTeller ft(cfg);
  // 1250 bytes per ms over the window = 10 Mbps.
  for (int i = 0; i <= 40; ++i) ft.on_dequeue(1250, at(i * 1000));
  EXPECT_NEAR(ft.tx_rate_bps(at(40'000)), 10e6, 0.3e6);
  const auto pred = ft.predict(at(40'000), 12'500, std::nullopt);
  EXPECT_NEAR(pred.q_long.to_millis(), 10.0, 0.5);
}

TEST(FortuneTeller, QShortIsHeadWaitTime) {
  FortuneTeller ft;
  const auto pred = ft.predict(at(20'000), 0, at(5'000));
  EXPECT_NEAR(pred.q_short.to_millis(), 15.0, 1e-9);
}

TEST(FortuneTeller, QShortDisabledByAblationFlag) {
  FortuneTellerConfig cfg;
  cfg.use_qshort = false;
  FortuneTeller ft(cfg);
  const auto pred = ft.predict(at(20'000), 0, at(5'000));
  EXPECT_EQ(pred.q_short, Duration::zero());
}

TEST(FortuneTeller, TxIgnoresSubMillisecondIntervals) {
  FortuneTeller ft;
  // A burst of 8 packets within 1 us of each other, then 5 ms to the next
  // burst: only the 5 ms inter-burst interval counts.
  for (int burst = 0; burst < 5; ++burst) {
    for (int i = 0; i < 8; ++i) ft.on_dequeue(1200, at(burst * 5000 + i));
  }
  EXPECT_NEAR(ft.tx_delay(at(25'000)).to_millis(), 5.0, 0.2);
}

TEST(FortuneTeller, TxSkipsIdleGaps) {
  FortuneTeller ft;
  // Two bursts 3 ms apart while backlogged, then the queue empties; the
  // next burst is 40 ms later (application idle) and must not be counted.
  for (int i = 0; i < 4; ++i) ft.on_dequeue(1200, at(i), false);
  for (int i = 0; i < 4; ++i) ft.on_dequeue(1200, at(3000 + i), i == 3);
  for (int i = 0; i < 4; ++i) ft.on_dequeue(1200, at(39'000 + i), false);
  // Within the 40 ms window the only valid interval is the 3 ms one; the
  // 36 ms idle gap after the queue emptied must have been skipped.
  EXPECT_NEAR(ft.tx_delay(at(39'100)).to_millis(), 3.0, 0.2);
}

TEST(FortuneTeller, BurstAdjustmentSubtractsMaxBurst) {
  FortuneTellerConfig cfg;
  cfg.fallback_rate_bps = 8e6;
  FortuneTeller ft(cfg);
  // One simultaneous departure of 4 x 1200 = 4800 bytes.
  for (int i = 0; i < 4; ++i) ft.on_dequeue(1200, at(100 + i));
  ft.on_dequeue(1200, at(5'000));  // closes the burst
  EXPECT_EQ(ft.max_burst_bytes(at(5'000)), 4800);
  // qSize = max(6000 - 4800, 0) = 1200 bytes. The measured window rate is
  // 6000 bytes / 40 ms = 1.2 Mbps, so qLong = 1200*8/1.2e6 = 8 ms.
  const auto pred = ft.predict(at(5'000), 6000, std::nullopt);
  EXPECT_NEAR(pred.q_long.to_millis(), 8.0, 0.5);
}

TEST(FortuneTeller, BurstAdjustmentClampsAtZero) {
  FortuneTellerConfig cfg;
  FortuneTeller ft(cfg);
  for (int i = 0; i < 8; ++i) ft.on_dequeue(1200, at(100 + i));
  ft.on_dequeue(1200, at(5'000));
  const auto pred = ft.predict(at(5'000), 5000, std::nullopt);  // < maxBurst
  EXPECT_EQ(pred.q_long, Duration::zero());
}

TEST(FortuneTeller, BurstAdjustmentAblation) {
  FortuneTellerConfig with;
  FortuneTellerConfig without;
  without.burst_adjustment = false;
  FortuneTeller a(with);
  FortuneTeller b(without);
  for (auto* ft : {&a, &b}) {
    for (int i = 0; i < 4; ++i) ft->on_dequeue(1200, at(100 + i));
    ft->on_dequeue(1200, at(5'000));
  }
  EXPECT_LT(a.predict(at(5'000), 6000, std::nullopt).q_long,
            b.predict(at(5'000), 6000, std::nullopt).q_long);
}

TEST(FortuneTeller, PredictionClampedAtMaximum) {
  FortuneTellerConfig cfg;
  cfg.max_prediction = 1_s;
  cfg.fallback_rate_bps = 1e3;  // absurdly slow: raw qLong would be hours
  cfg.burst_adjustment = false;
  FortuneTeller ft(cfg);
  const auto pred = ft.predict(at(0), 10'000'000, std::nullopt);
  EXPECT_LE(pred.total(), 1_s + 1_ms);
}

TEST(FortuneTeller, PredictViaQdiscReadsPerFlowState) {
  FortuneTellerConfig cfg;
  cfg.fallback_rate_bps = 8e6;
  cfg.burst_adjustment = false;
  FortuneTeller ft(cfg);
  queue::DropTailFifo q(-1);
  net::Packet p;
  p.size_bytes = 10'000;
  q.enqueue(std::move(p), at(1'000));
  const auto pred = ft.predict(at(3'000), q, net::FlowId{});
  EXPECT_NEAR(pred.q_long.to_millis(), 10.0, 0.01);
  EXPECT_NEAR(pred.q_short.to_millis(), 2.0, 0.01);  // head since t=1ms
}

// Fig. 7 shape: on an ABW stall, qShort rises immediately (head packet
// stuck) while qLong reacts only as the measured rate decays.
TEST(FortuneTeller, QShortLeadsQLongAfterAbwDrop) {
  FortuneTellerConfig cfg;
  FortuneTeller ft(cfg);
  // Steady state: 1250-byte departures every 1 ms (10 Mbps).
  std::int64_t t_us = 0;
  for (; t_us < 40'000; t_us += 1000) ft.on_dequeue(1250, at(t_us));
  // Channel stalls at t=40ms: no departures; head waits.
  // The queue itself is still small early in the stall (2 packets) and
  // has built up by 30 ms in (10 packets).
  const TimePoint stall_start = at(40'000);
  const auto early = ft.predict(at(45'000), 2'500, stall_start);
  const auto later = ft.predict(at(70'000), 12'500, stall_start);
  // 5 ms into the stall: qShort = 5 ms dominates its own rise.
  EXPECT_NEAR(early.q_short.to_millis(), 5.0, 1e-6);
  // 30 ms in: qShort has kept growing...
  EXPECT_NEAR(later.q_short.to_millis(), 30.0, 1e-6);
  // ...and qLong also grew because the windowed rate collapsed.
  EXPECT_GT(later.q_long, early.q_long);
  // The early rise is dominated by qShort, not qLong (the 40 ms window
  // still holds pre-stall departures).
  EXPECT_GT(early.q_short, early.q_long);
}

}  // namespace
}  // namespace zhuge::core
