// Unit tests for the Zhuge Fortune Teller (§4): qLong / qShort / tx
// estimation, the Eq. 1 burst adjustment, idle-gap filtering, and the
// Fig. 7 reaction shape.

#include <gtest/gtest.h>

#include <deque>
#include <utility>

#include "core/fortune_teller.hpp"
#include "queue/fifo.hpp"
#include "sim/random.hpp"

namespace zhuge::core {
namespace {

using sim::Duration;
using sim::TimePoint;
using namespace sim::literals;

TimePoint at(std::int64_t us) { return TimePoint::zero() + Duration::micros(us); }

TEST(FortuneTeller, UsesFallbacksBeforeAnyDeparture) {
  FortuneTellerConfig cfg;
  cfg.fallback_rate_bps = 8e6;
  cfg.fallback_tx = 2_ms;
  cfg.burst_adjustment = false;
  FortuneTeller ft(cfg);
  // 10 kB queued at the 8 Mbps fallback = 10 ms qLong; + 2 ms fallback tx.
  const auto pred = ft.predict(at(0), 10'000, std::nullopt);
  EXPECT_NEAR(pred.q_long.to_millis(), 10.0, 0.01);
  EXPECT_NEAR(pred.tx.to_millis(), 2.0, 0.01);
  EXPECT_EQ(pred.q_short, Duration::zero());
}

TEST(FortuneTeller, QLongUsesMeasuredTxRate) {
  FortuneTellerConfig cfg;
  cfg.burst_adjustment = false;
  FortuneTeller ft(cfg);
  // 1250 bytes per ms over the window = 10 Mbps.
  for (int i = 0; i <= 40; ++i) ft.on_dequeue(1250, at(i * 1000));
  EXPECT_NEAR(ft.tx_rate_bps(at(40'000)), 10e6, 0.3e6);
  const auto pred = ft.predict(at(40'000), 12'500, std::nullopt);
  EXPECT_NEAR(pred.q_long.to_millis(), 10.0, 0.5);
}

TEST(FortuneTeller, QShortIsHeadWaitTime) {
  FortuneTeller ft;
  const auto pred = ft.predict(at(20'000), 0, at(5'000));
  EXPECT_NEAR(pred.q_short.to_millis(), 15.0, 1e-9);
}

TEST(FortuneTeller, QShortDisabledByAblationFlag) {
  FortuneTellerConfig cfg;
  cfg.use_qshort = false;
  FortuneTeller ft(cfg);
  const auto pred = ft.predict(at(20'000), 0, at(5'000));
  EXPECT_EQ(pred.q_short, Duration::zero());
}

TEST(FortuneTeller, TxIgnoresSubMillisecondIntervals) {
  FortuneTeller ft;
  // A burst of 8 packets within 1 us of each other, then 5 ms to the next
  // burst: only the 5 ms inter-burst interval counts.
  for (int burst = 0; burst < 5; ++burst) {
    for (int i = 0; i < 8; ++i) ft.on_dequeue(1200, at(burst * 5000 + i));
  }
  EXPECT_NEAR(ft.tx_delay(at(25'000)).to_millis(), 5.0, 0.2);
}

TEST(FortuneTeller, TxSkipsIdleGaps) {
  FortuneTeller ft;
  // Two bursts 3 ms apart while backlogged, then the queue empties; the
  // next burst is 40 ms later (application idle) and must not be counted.
  for (int i = 0; i < 4; ++i) ft.on_dequeue(1200, at(i), false);
  for (int i = 0; i < 4; ++i) ft.on_dequeue(1200, at(3000 + i), i == 3);
  for (int i = 0; i < 4; ++i) ft.on_dequeue(1200, at(39'000 + i), false);
  // Within the 40 ms window the only valid interval is the 3 ms one; the
  // 36 ms idle gap after the queue emptied must have been skipped.
  EXPECT_NEAR(ft.tx_delay(at(39'100)).to_millis(), 3.0, 0.2);
}

TEST(FortuneTeller, BurstAdjustmentSubtractsMaxBurst) {
  FortuneTellerConfig cfg;
  cfg.fallback_rate_bps = 8e6;
  FortuneTeller ft(cfg);
  // One simultaneous departure of 4 x 1200 = 4800 bytes.
  for (int i = 0; i < 4; ++i) ft.on_dequeue(1200, at(100 + i));
  ft.on_dequeue(1200, at(5'000));  // closes the burst
  EXPECT_EQ(ft.max_burst_bytes(at(5'000)), 4800);
  // qSize = max(6000 - 4800, 0) = 1200 bytes. The measured window rate is
  // 6000 bytes / 40 ms = 1.2 Mbps, so qLong = 1200*8/1.2e6 = 8 ms.
  const auto pred = ft.predict(at(5'000), 6000, std::nullopt);
  EXPECT_NEAR(pred.q_long.to_millis(), 8.0, 0.5);
}

TEST(FortuneTeller, BurstAdjustmentClampsAtZero) {
  FortuneTellerConfig cfg;
  FortuneTeller ft(cfg);
  for (int i = 0; i < 8; ++i) ft.on_dequeue(1200, at(100 + i));
  ft.on_dequeue(1200, at(5'000));
  const auto pred = ft.predict(at(5'000), 5000, std::nullopt);  // < maxBurst
  EXPECT_EQ(pred.q_long, Duration::zero());
}

TEST(FortuneTeller, BurstAdjustmentAblation) {
  FortuneTellerConfig with;
  FortuneTellerConfig without;
  without.burst_adjustment = false;
  FortuneTeller a(with);
  FortuneTeller b(without);
  for (auto* ft : {&a, &b}) {
    for (int i = 0; i < 4; ++i) ft->on_dequeue(1200, at(100 + i));
    ft->on_dequeue(1200, at(5'000));
  }
  EXPECT_LT(a.predict(at(5'000), 6000, std::nullopt).q_long,
            b.predict(at(5'000), 6000, std::nullopt).q_long);
}

TEST(FortuneTeller, PredictionClampedAtMaximum) {
  FortuneTellerConfig cfg;
  cfg.max_prediction = 1_s;
  cfg.fallback_rate_bps = 1e3;  // absurdly slow: raw qLong would be hours
  cfg.burst_adjustment = false;
  FortuneTeller ft(cfg);
  const auto pred = ft.predict(at(0), 10'000'000, std::nullopt);
  EXPECT_LE(pred.total(), 1_s + 1_ms);
}

TEST(FortuneTeller, PredictViaQdiscReadsPerFlowState) {
  FortuneTellerConfig cfg;
  cfg.fallback_rate_bps = 8e6;
  cfg.burst_adjustment = false;
  FortuneTeller ft(cfg);
  queue::DropTailFifo q(-1);
  net::Packet p;
  p.size_bytes = 10'000;
  q.enqueue(std::move(p), at(1'000));
  const auto pred = ft.predict(at(3'000), q, net::FlowId{});
  EXPECT_NEAR(pred.q_long.to_millis(), 10.0, 0.01);
  EXPECT_NEAR(pred.q_short.to_millis(), 2.0, 0.01);  // head since t=1ms
}

// Fig. 7 shape: on an ABW stall, qShort rises immediately (head packet
// stuck) while qLong reacts only as the measured rate decays.
TEST(FortuneTeller, QShortLeadsQLongAfterAbwDrop) {
  FortuneTellerConfig cfg;
  FortuneTeller ft(cfg);
  // Steady state: 1250-byte departures every 1 ms (10 Mbps).
  std::int64_t t_us = 0;
  for (; t_us < 40'000; t_us += 1000) ft.on_dequeue(1250, at(t_us));
  // Channel stalls at t=40ms: no departures; head waits.
  // The queue itself is still small early in the stall (2 packets) and
  // has built up by 30 ms in (10 packets).
  const TimePoint stall_start = at(40'000);
  const auto early = ft.predict(at(45'000), 2'500, stall_start);
  const auto later = ft.predict(at(70'000), 12'500, stall_start);
  // 5 ms into the stall: qShort = 5 ms dominates its own rise.
  EXPECT_NEAR(early.q_short.to_millis(), 5.0, 1e-6);
  // 30 ms in: qShort has kept growing...
  EXPECT_NEAR(later.q_short.to_millis(), 30.0, 1e-6);
  // ...and qLong also grew because the windowed rate collapsed.
  EXPECT_GT(later.q_long, early.q_long);
  // The early rise is dominated by qShort, not qLong (the 40 ms window
  // still holds pre-stall departures).
  EXPECT_GT(early.q_short, early.q_long);
}

// ---- SoA ↔ deque bit-equivalence -----------------------------------------
// The PR 8 hot-path rewrite moved the windowed estimators from std::deque
// storage to SoA rings and inlined predict(). The reference below is the
// pre-rewrite layout — deque-of-pairs estimators with the arithmetic
// preserved operation-for-operation — so any reordering or dropped
// operation in the SoA path shows up as a bitwise mismatch here. The
// end-to-end counterpart is the golden fingerprint suite (basic_rtp,
// dense_64sta_churn, tcp_mix_fade) plus the attrib_dense64 stage-p95
// anchor, which pin the same property through whole simulations.

struct RefRate {
  explicit RefRate(Duration w) : window(w) {}
  Duration window;
  std::deque<std::pair<std::int64_t, std::int64_t>> q;  // (t_ns, bytes)
  std::int64_t total = 0;
  void evict(TimePoint now) {
    const std::int64_t cutoff = (now - window).count_ns();
    while (!q.empty() && q.front().first < cutoff) {
      total -= q.front().second;
      q.pop_front();
    }
  }
  void record(TimePoint t, std::int64_t bytes) {
    q.emplace_back(t.count_ns(), bytes);
    total += bytes;
    evict(t);
  }
  double rate_or(TimePoint now, double fallback) {
    evict(now);
    if (q.empty()) return fallback;
    const double secs = window.to_seconds();
    if (secs <= 0.0) return fallback;
    const double r = static_cast<double>(total) * 8.0 / secs;
    return r <= 0.0 ? fallback : r;
  }
};

struct RefMean {
  explicit RefMean(Duration w) : window(w) {}
  Duration window;
  std::deque<std::pair<std::int64_t, double>> q;
  double sum = 0.0;
  std::uint32_t since_resum = 0;
  void evict(TimePoint now) {
    const std::int64_t cutoff = (now - window).count_ns();
    while (!q.empty() && q.front().first < cutoff) {
      sum -= q.front().second;
      q.pop_front();
    }
  }
  void record(TimePoint t, double v) {
    q.emplace_back(t.count_ns(), v);
    sum += v;
    evict(t);
    if (++since_resum >= 4096) {  // mirrors WindowedMean::kResumPeriod
      since_resum = 0;
      double s = 0.0;
      for (const auto& [qt, qv] : q) s += qv;
      sum = s;
    }
  }
  std::optional<double> mean(TimePoint now) {
    evict(now);
    if (q.empty()) return std::nullopt;
    return sum / static_cast<double>(q.size());
  }
};

struct RefMax {
  explicit RefMax(Duration w) : window(w) {}
  Duration window;
  std::deque<std::pair<std::int64_t, double>> q;  // monotonic by value
  void evict(TimePoint now) {
    const std::int64_t cutoff = (now - window).count_ns();
    while (!q.empty() && q.front().first < cutoff) q.pop_front();
  }
  void record(TimePoint t, double v) {
    while (!q.empty() && q.back().second <= v) q.pop_back();
    q.emplace_back(t.count_ns(), v);
    evict(t);
  }
  double max(TimePoint now, double fallback) {
    evict(now);
    return q.empty() ? fallback : q.front().second;
  }
};

struct RefFortuneTeller {
  FortuneTellerConfig cfg;
  RefRate tx_rate;
  RefMean dequeue_interval;
  RefMax burst_max;
  std::optional<TimePoint> last_dequeue;
  bool last_left_queue_empty = false;
  std::int64_t current_burst_bytes = 0;

  explicit RefFortuneTeller(FortuneTellerConfig c)
      : cfg(c),
        tx_rate(c.window),
        dequeue_interval(c.window),
        burst_max(c.burst_window) {}

  void on_dequeue(std::int64_t bytes, TimePoint now, bool queue_empty_after) {
    tx_rate.record(now, bytes);
    if (last_dequeue.has_value()) {
      const Duration gap = now - *last_dequeue;
      if (gap >= cfg.burst_resolution) {
        if (current_burst_bytes > 0) {
          burst_max.record(now, static_cast<double>(current_burst_bytes));
        }
        current_burst_bytes = 0;
        if (!last_left_queue_empty) {
          dequeue_interval.record(now, gap.to_seconds());
        }
        current_burst_bytes = bytes;
      } else {
        current_burst_bytes += bytes;
      }
    } else {
      current_burst_bytes = bytes;
    }
    last_dequeue = now;
    last_left_queue_empty = queue_empty_after;
  }

  std::int64_t max_burst_bytes(TimePoint now) {
    const double past = burst_max.max(now, 0.0);
    return static_cast<std::int64_t>(
        std::max(past, static_cast<double>(current_burst_bytes)));
  }

  Duration tx_delay(TimePoint now) {
    const auto m = dequeue_interval.mean(now);
    if (!m.has_value()) return cfg.fallback_tx;
    return Duration::from_seconds(*m);
  }

  FortuneTeller::Prediction predict(TimePoint now, std::int64_t queue_bytes,
                                    std::optional<TimePoint> head_since) {
    FortuneTeller::Prediction out{};
    std::int64_t q_size = queue_bytes;
    if (cfg.burst_adjustment) {
      q_size = std::max<std::int64_t>(queue_bytes - max_burst_bytes(now), 0);
    }
    const double rate = tx_rate.rate_or(now, cfg.fallback_rate_bps);
    out.q_long = Duration::from_seconds(static_cast<double>(q_size) * 8.0 / rate);
    if (cfg.use_qshort && head_since.has_value()) out.q_short = now - *head_since;
    out.tx = tx_delay(now);
    const Duration total = out.q_long + out.q_short + out.tx;
    if (total > cfg.max_prediction) {
      const double scale = cfg.max_prediction.ratio(total);
      out.q_long = out.q_long * scale;
      out.q_short = out.q_short * scale;
      out.tx = out.tx * scale;
    }
    return out;
  }
};

TEST(FortuneTeller, SoaPredictBitEquivalentToDequeReference) {
  FortuneTellerConfig cfg;  // defaults: burst adjustment + qShort on
  FortuneTeller ft(cfg);
  RefFortuneTeller ref(cfg);
  sim::Rng rng(4242);
  TimePoint t = TimePoint::zero();

  // 8000 bursts: enough dequeue-interval records to cross the 4096-record
  // resummation boundary inside the mean estimator, with idle gaps, AMPDU
  // sub-ms bursts, and multi-window silences mixed in.
  for (int burst = 0; burst < 8'000; ++burst) {
    const bool idle = rng.uniform_int(50) == 0;
    t += idle ? Duration::millis(30 + rng.uniform_int(300))
              : Duration::micros(1'000 + rng.uniform_int(9'000));
    const auto pkts = 1 + rng.uniform_int(8);
    for (std::uint32_t k = 0; k < pkts; ++k) {
      if (k > 0) t += Duration::micros(rng.uniform_int(2) == 0 ? 0 : 10);
      const auto bytes = static_cast<std::int64_t>(200 + rng.uniform_int(1400));
      const bool empties = (k + 1 == pkts) && rng.uniform_int(4) == 0;
      ft.on_dequeue(bytes, t, empties);
      ref.on_dequeue(bytes, t, empties);
    }

    const auto qb = static_cast<std::int64_t>(rng.uniform_int(200'000));
    std::optional<TimePoint> head;
    if (rng.uniform_int(3) != 0) {
      head = t - Duration::micros(rng.uniform_int(50'000));
    }
    // The underlying doubles, exactly — not just the rounded durations.
    ASSERT_EQ(ft.tx_rate_bps(t), ref.tx_rate.rate_or(t, cfg.fallback_rate_bps))
        << "rate diverged at burst " << burst;
    ASSERT_EQ(ft.max_burst_bytes(t), ref.max_burst_bytes(t))
        << "burst max diverged at burst " << burst;
    const auto got = ft.predict(t, qb, head);
    const auto want = ref.predict(t, qb, head);
    ASSERT_EQ(got.q_long.count_ns(), want.q_long.count_ns())
        << "qLong diverged at burst " << burst;
    ASSERT_EQ(got.q_short.count_ns(), want.q_short.count_ns())
        << "qShort diverged at burst " << burst;
    ASSERT_EQ(got.tx.count_ns(), want.tx.count_ns())
        << "tx diverged at burst " << burst;
  }
}

}  // namespace
}  // namespace zhuge::core
