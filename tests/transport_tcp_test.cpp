// Integration-style tests for the TCP-like stack: sender and receiver
// wired back to back through configurable fault-injecting pipes.

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "cca/cubic.hpp"
#include "cca/copa.hpp"
#include "sim/simulator.hpp"
#include "transport/tcp_receiver.hpp"
#include "transport/tcp_sender.hpp"

namespace zhuge::transport {
namespace {

using net::Packet;
using sim::Duration;
using sim::Simulator;
using sim::TimePoint;
using namespace sim::literals;

/// Back-to-back sender/receiver pair over delay pipes with optional
/// deterministic fault injection.
struct Loop {
  Simulator sim;
  net::PacketUidSource uids;
  net::FlowId flow{1, 2, 10, 20, 6};
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;
  std::vector<std::tuple<std::uint32_t, TimePoint, TimePoint>> frames;
  Duration one_way = 10_ms;
  std::function<bool(const Packet&)> drop_data;  ///< return true to drop

  explicit Loop(std::unique_ptr<cca::CongestionControl> cca = nullptr) {
    if (!cca) cca = std::make_unique<cca::Cubic>();
    sender = std::make_unique<TcpSender>(
        sim, flow, std::move(cca), TcpSender::Config{}, uids,
        [this](Packet p) {
          if (drop_data && drop_data(p)) return;
          sim.schedule_after(one_way, [this, p = std::move(p)]() mutable {
            receiver->on_data(p);
          });
        });
    receiver = std::make_unique<TcpReceiver>(
        sim, TcpReceiver::Config{}, uids,
        [this](Packet p) {
          sim.schedule_after(one_way, [this, p = std::move(p)]() mutable {
            sender->on_ack(p);
          });
        },
        [this](std::uint32_t id, TimePoint cap, TimePoint now) {
          frames.emplace_back(id, cap, now);
        });
  }
};

TEST(TcpLoop, DeliversFramesInOrderExactlyOnce) {
  Loop loop;
  for (std::uint32_t i = 0; i < 20; ++i) {
    loop.sender->write_frame(i, loop.sim.now(), 5000);
  }
  loop.sim.run_until(TimePoint::zero() + 10_s);
  ASSERT_EQ(loop.frames.size(), 20u);
  for (std::uint32_t i = 0; i < 20; ++i) {
    EXPECT_EQ(std::get<0>(loop.frames[i]), i);
  }
  EXPECT_EQ(loop.receiver->contiguous_received(), 20u * 5000u);
  EXPECT_EQ(loop.sender->bytes_in_flight(), 0u);
}

TEST(TcpLoop, MeasuresRttNearPathRtt) {
  Loop loop;
  loop.sender->write_frame(0, loop.sim.now(), 50'000);
  loop.sim.run_until(TimePoint::zero() + 5_s);
  EXPECT_NEAR(loop.sender->smoothed_rtt().to_millis(), 20.0, 3.0);
}

TEST(TcpLoop, FastRetransmitRecoversSingleLoss) {
  Loop loop;
  int dropped = 0;
  loop.drop_data = [&](const Packet& p) {
    // Drop exactly one data packet (the third one).
    if (!p.tcp().is_ack && p.tcp().seq == 2 * 1200 && dropped == 0 &&
        p.tcp().end_seq <= 20'000) {
      ++dropped;
      return true;
    }
    return false;
  };
  loop.sender->write_frame(0, loop.sim.now(), 30'000);
  loop.sim.run_until(TimePoint::zero() + 5_s);
  EXPECT_EQ(dropped, 1);
  ASSERT_EQ(loop.frames.size(), 1u);
  EXPECT_GE(loop.sender->retransmissions(), 1u);
  EXPECT_EQ(loop.receiver->contiguous_received(), 30'000u);
}

TEST(TcpLoop, RtoRecoversFromAckBlackhole) {
  Loop loop;
  bool blackhole = true;
  loop.drop_data = [&](const Packet& p) { return blackhole && !p.tcp().is_ack; };
  loop.sender->write_frame(0, loop.sim.now(), 2400);
  loop.sim.schedule_at(TimePoint::zero() + 1_s, [&] { blackhole = false; });
  loop.sim.run_until(TimePoint::zero() + 20_s);
  ASSERT_EQ(loop.frames.size(), 1u);
  EXPECT_GE(loop.sender->retransmissions(), 1u);
}

TEST(TcpLoop, SurvivesHeavyRandomLoss) {
  Loop loop;
  sim::Rng rng(3);
  loop.drop_data = [&](const Packet& p) {
    return !p.tcp().is_ack && rng.chance(0.2);
  };
  for (std::uint32_t i = 0; i < 10; ++i) {
    loop.sender->write_frame(i, loop.sim.now(), 6000);
  }
  loop.sim.run_until(TimePoint::zero() + 60_s);
  EXPECT_EQ(loop.frames.size(), 10u);
  EXPECT_EQ(loop.receiver->contiguous_received(), 60'000u);
}

TEST(TcpLoop, RetransmittedFrameDeliversOnce) {
  Loop loop;
  int dropped = 0;
  loop.drop_data = [&](const Packet& p) {
    if (!p.tcp().is_ack && dropped < 3 && p.tcp().seq < 3600) {
      ++dropped;
      return true;
    }
    return false;
  };
  loop.sender->write_frame(0, loop.sim.now(), 3600);
  loop.sender->write_frame(1, loop.sim.now(), 3600);
  loop.sim.run_until(TimePoint::zero() + 30_s);
  ASSERT_EQ(loop.frames.size(), 2u);  // exactly once each
}

TEST(TcpLoop, BacklogDrainsEventually) {
  Loop loop(std::make_unique<cca::Copa>());
  for (std::uint32_t i = 0; i < 50; ++i) {
    loop.sender->write_frame(i, loop.sim.now(), 10'000);
  }
  EXPECT_GT(loop.sender->backlog_bytes(), 0u);
  loop.sim.run_until(TimePoint::zero() + 60_s);
  EXPECT_EQ(loop.sender->backlog_bytes(), 0u);
  EXPECT_EQ(loop.frames.size(), 50u);
}

TEST(TcpReceiver, MergesOutOfOrderIntervals) {
  Simulator sim;
  net::PacketUidSource uids;
  std::vector<Packet> acks;
  TcpReceiver rx(sim, {}, uids, [&](Packet p) { acks.push_back(std::move(p)); },
                 nullptr);
  auto data = [&](std::uint64_t seq, std::uint64_t end) {
    Packet p;
    p.flow = net::FlowId{1, 2, 3, 4, 6};
    net::TcpHeader h;
    h.seq = seq;
    h.end_seq = end;
    h.frame_end_seq = 10'000;
    p.header = h;
    return p;
  };
  rx.on_data(data(1200, 2400));  // hole at [0,1200)
  EXPECT_EQ(acks.back().tcp().ack, 0u);
  EXPECT_EQ(acks.back().tcp().sack_upto, 2400u);
  rx.on_data(data(2400, 3600));
  EXPECT_EQ(acks.back().tcp().ack, 0u);
  rx.on_data(data(0, 1200));  // fills the hole
  EXPECT_EQ(acks.back().tcp().ack, 3600u);
  EXPECT_EQ(rx.contiguous_received(), 3600u);
}

TEST(TcpReceiver, EchoesTimestampAndAbcMark) {
  Simulator sim;
  net::PacketUidSource uids;
  std::vector<Packet> acks;
  TcpReceiver rx(sim, {}, uids, [&](Packet p) { acks.push_back(std::move(p)); },
                 nullptr);
  Packet p;
  p.flow = net::FlowId{1, 2, 3, 4, 6};
  net::TcpHeader h;
  h.seq = 0;
  h.end_seq = 1200;
  h.ts_val = 12345;
  h.abc_mark = net::AbcMark::kAccelerate;
  p.header = h;
  rx.on_data(p);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_TRUE(acks[0].tcp().is_ack);
  EXPECT_EQ(acks[0].tcp().ts_echo, 12345u);
  EXPECT_EQ(acks[0].tcp().abc_echo, net::AbcMark::kAccelerate);
  EXPECT_EQ(acks[0].flow, p.flow.reversed());
}

}  // namespace
}  // namespace zhuge::transport
