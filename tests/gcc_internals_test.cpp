// Focused tests for the GCC mechanisms that the reproduction exposed as
// load-bearing: packet grouping, the windowed receive-rate estimator, the
// avg_max link-estimate regime switch, loss-cap anchoring, and AIMD-style
// loss recovery. Also covers Zhuge's opaque-transport (QUIC-like) path.

#include <gtest/gtest.h>

#include "cca/gcc.hpp"
#include "core/zhuge.hpp"
#include "queue/fifo.hpp"
#include "sim/simulator.hpp"

namespace zhuge {
namespace {

using cca::Gcc;
using cca::TwccObservation;
using sim::Duration;
using sim::TimePoint;
using namespace sim::literals;

TimePoint at(std::int64_t ms) { return TimePoint::zero() + Duration::millis(ms); }

// --- packet grouping -------------------------------------------------------

std::vector<TwccObservation> burst(std::int64_t send_ms, int n, double owd_ms,
                                   std::uint16_t& seq, double intra_jitter_ms) {
  // n packets sent within 1 ms (one burst/AMPDU) with noisy arrivals.
  std::vector<TwccObservation> v;
  for (int i = 0; i < n; ++i) {
    TwccObservation o;
    o.twcc_seq = seq++;
    o.send_time = at(send_ms) + Duration::micros(i * 100);
    o.recv_time = o.send_time + Duration::from_millis(
                                    owd_ms + (i % 2 == 0 ? intra_jitter_ms : 0.0));
    o.size_bytes = 12'000;
    v.push_back(o);
  }
  return v;
}

TEST(GccGrouping, IntraBurstJitterDoesNotTriggerOveruse) {
  Gcc g;
  std::uint16_t seq = 0;
  // Heavy intra-burst jitter (15 ms!) but zero inter-burst trend: the
  // burst grouping must absorb it and keep the rate climbing.
  const double start = g.target_rate_bps();
  for (int w = 0; w < 60; ++w) {
    std::vector<TwccObservation> obs;
    for (int b = 0; b < 4; ++b) {
      auto bb = burst(w * 100 + b * 25, 5, 20.0, seq, 15.0);
      obs.insert(obs.end(), bb.begin(), bb.end());
    }
    g.on_feedback(obs, at(w * 100 + 100));
  }
  EXPECT_GT(g.target_rate_bps(), 1.5 * start)
      << "intra-burst jitter must not be read as congestion";
}

TEST(GccGrouping, InterGroupTrendStillDetected) {
  Gcc g;
  std::uint16_t seq = 0;
  for (int w = 0; w < 40; ++w) {
    std::vector<TwccObservation> obs;
    for (int b = 0; b < 4; ++b) {
      auto bb = burst(w * 100 + b * 25, 5, 20.0, seq, 2.0);
      obs.insert(obs.end(), bb.begin(), bb.end());
    }
    g.on_feedback(obs, at(w * 100 + 100));
  }
  const double before = g.target_rate_bps();
  // Now every burst arrives 12 ms later than the previous: clear overuse.
  double owd = 20.0;
  for (int w = 40; w < 50; ++w) {
    std::vector<TwccObservation> obs;
    for (int b = 0; b < 4; ++b) {
      owd += 12.0;
      auto bb = burst(w * 100 + b * 25, 5, owd, seq, 2.0);
      obs.insert(obs.end(), bb.begin(), bb.end());
    }
    g.on_feedback(obs, at(w * 100 + 100));
  }
  EXPECT_LT(g.target_rate_bps(), before);
}

// --- receive-rate estimator -------------------------------------------------

TEST(GccReceiveRate, WindowedEstimateIgnoresBurstCompression) {
  Gcc g;
  std::uint16_t seq = 0;
  // 10 x 12 kB per 100 ms = 9.6 Mbps delivered, but each feedback's
  // packets land within 2 ms of each other (AMPDU burst). A naive
  // per-feedback estimate would read ~480 Mbps.
  for (int w = 0; w < 30; ++w) {
    std::vector<TwccObservation> obs;
    for (int i = 0; i < 10; ++i) {
      TwccObservation o;
      o.twcc_seq = seq++;
      o.send_time = at(w * 100 + i * 10);
      o.recv_time = at(w * 100 + 50) + Duration::micros(i * 200);
      o.size_bytes = 12'000;
      obs.push_back(o);
    }
    g.on_feedback(obs, at(w * 100 + 100));
  }
  EXPECT_GT(g.receive_rate_bps(), 5e6);
  EXPECT_LT(g.receive_rate_bps(), 20e6)
      << "burst compression must not inflate the receive-rate estimate";
}

// --- loss controller --------------------------------------------------------

TEST(GccLoss, CapInactiveUntilFirstLossEpisode) {
  Gcc g;
  std::uint16_t seq = 0;
  // Clean ramp with zero-loss reports interleaved: the loss cap (which
  // starts at the low initial rate) must not throttle the ramp.
  for (int w = 0; w < 100; ++w) {
    std::vector<TwccObservation> obs;
    for (int i = 0; i < 10; ++i) {
      TwccObservation o;
      o.twcc_seq = seq++;
      o.send_time = at(w * 100 + i * 10);
      o.recv_time = o.send_time + 20_ms;
      o.size_bytes = 12'000;
      obs.push_back(o);
    }
    g.on_feedback(obs, at(w * 100 + 100));
    g.on_loss_report(0.0, at(w * 100 + 100));
  }
  EXPECT_GT(g.target_rate_bps(), 3e6)
      << "a never-engaged loss cap must not bind";
}

TEST(GccLoss, CutAnchorsAtOperatingPointNotStaleCap) {
  Gcc g;
  std::uint16_t seq = 0;
  auto feed = [&](int w, double owd_ms) {
    std::vector<TwccObservation> obs;
    for (int i = 0; i < 10; ++i) {
      TwccObservation o;
      o.twcc_seq = seq++;
      o.send_time = at(w * 100 + i * 10);
      o.recv_time = o.send_time + Duration::from_millis(owd_ms);
      o.size_bytes = 12'000;
      obs.push_back(o);
    }
    g.on_feedback(obs, at(w * 100 + 100));
  };
  for (int w = 0; w < 60; ++w) feed(w, 20.0);
  // First loss episode at a high rate engages the cap high...
  g.on_loss_report(0.3, at(6000));
  // ...then a long clean stretch at a much lower operating point
  // (simulated by lowering the delivered rate via fewer bytes).
  for (int w = 61; w < 90; ++w) {
    std::vector<TwccObservation> obs;
    TwccObservation o;
    o.twcc_seq = seq++;
    o.send_time = at(w * 100);
    o.recv_time = o.send_time + 20_ms;
    o.size_bytes = 3'000;  // ~0.5 Mbps delivered
    obs.push_back(o);
    g.on_feedback(obs, at(w * 100 + 100));
  }
  // A fresh loss episode must anchor near the *current* operating point:
  // one cut should land the target well below 2 Mbps, not spend many
  // cuts working down from the stale high cap.
  g.on_loss_report(0.4, at(9100));
  EXPECT_LT(g.target_rate_bps(), 2e6);
}

TEST(GccLoss, RecoveryIsCautiousAtLowRatesAdditiveAtHighRates) {
  // The min(x1.05, +250 kbps) recovery slope: at 1 Mbps the step is
  // 50 kbps (multiplicative binds); at 20 Mbps it is 250 kbps (additive
  // binds). Verify through repeated clean updates after engineered cuts.
  auto recovered_step = [](double engage_rate_bps) {
    Gcc::Config cfg;
    cfg.max_rate_bps = 40e6;
    Gcc g(cfg);
    std::uint16_t seq = 0;
    // Establish delivered rate ~ engage_rate so the cut anchors there
    // (long enough for the delay-based ramp to clear the cut level).
    for (int w = 0; w < 120; ++w) {
      std::vector<TwccObservation> obs;
      for (int i = 0; i < 10; ++i) {
        TwccObservation o;
        o.twcc_seq = seq++;
        o.send_time = at(w * 100 + i * 10);
        o.recv_time = o.send_time + 20_ms;
        o.size_bytes = static_cast<std::uint32_t>(engage_rate_bps / 800.0);
        obs.push_back(o);
      }
      g.on_feedback(obs, at(w * 100 + 100));
    }
    g.on_loss_report(0.5, at(12100));  // engage + cut
    const double after_cut = g.target_rate_bps();
    g.on_loss_report(0.0, at(13100));  // one recovery step
    return g.target_rate_bps() - after_cut;
  };
  const double low_step = recovered_step(1e6);
  const double high_step = recovered_step(24e6);
  EXPECT_LT(low_step, 110e3);               // ~5 % of ~1 Mbps-ish cut level
  EXPECT_NEAR(high_step, 250e3, 60e3);      // additive regime
}

// --- Zhuge with an opaque (QUIC-like) transport ------------------------------

TEST(ZhugeOpaque, EncryptedTransportStillGetsOobTreatment) {
  // §5.2/§6: Zhuge never parses sequence numbers — 5-tuples are enough,
  // so a fully encrypted transport (headerless packets here) still gets
  // the delay-ACK treatment.
  sim::Simulator simu;
  sim::Rng rng(1);
  net::FlowId flow{1, 100, 443, 50000, 17};  // UDP: QUIC-like
  std::vector<net::Packet> to_server;
  core::ZhugeFlow zf(simu, rng, flow, {},
                     [&](net::Packet p) { to_server.push_back(std::move(p)); });
  queue::DropTailFifo q(-1);

  // Downlink data with opaque payloads (monostate header).
  net::Packet data;
  data.flow = flow;
  data.size_bytes = 1240;
  zf.on_downlink(data, q);
  EXPECT_GE(data.predicted_delay_ms, 0.0);

  // Reverse-direction opaque packet = feedback: must be held and released
  // through the scheduler, not dropped or misparsed.
  net::Packet fb;
  fb.flow = flow.reversed();
  fb.size_bytes = 60;
  EXPECT_EQ(zf.handle_uplink(std::move(fb)), core::UplinkAction::kDelay);
  simu.run();
  ASSERT_EQ(to_server.size(), 1u);  // released by the AckScheduler
  EXPECT_EQ(to_server[0].flow, flow.reversed());
}

TEST(ZhugeOpaque, DelayedReleaseReflectsPredictedDeltas) {
  sim::Simulator simu;
  sim::Rng rng(1);
  net::FlowId flow{1, 100, 443, 50000, 17};
  std::vector<TimePoint> releases;
  core::ZhugeConfig cfg;
  cfg.oob.delta_smoothing_alpha = 1.0;
  core::ZhugeFlow zf(simu, rng, flow, cfg,
                     [&](net::Packet) { releases.push_back(simu.now()); });
  queue::DropTailFifo q(-1);

  // Two opaque data packets whose queue grew by 10 kB in between: the
  // prediction delta is positive, so the next feedback packet is held.
  net::Packet a;
  a.flow = flow;
  a.size_bytes = 1240;
  zf.on_downlink(a, q);
  net::Packet filler;
  filler.size_bytes = 100'000;
  q.enqueue(std::move(filler), simu.now());
  net::Packet b;
  b.flow = flow;
  b.size_bytes = 1240;
  zf.on_downlink(b, q);

  net::Packet fb;
  fb.flow = flow.reversed();
  (void)zf.handle_uplink(std::move(fb));
  simu.run();
  ASSERT_EQ(releases.size(), 1u);
  EXPECT_GT(releases[0], TimePoint::zero()) << "positive delta must delay release";
}

}  // namespace
}  // namespace zhuge
