// Unit and property tests for the queue disciplines: drop-tail FIFO,
// CoDel, and FQ-CoDel.

#include <gtest/gtest.h>

#include <vector>

#include "queue/codel.hpp"
#include "queue/fifo.hpp"
#include "queue/fq_codel.hpp"
#include "sim/random.hpp"

namespace zhuge::queue {
namespace {

using net::FlowId;
using net::Packet;
using sim::Duration;
using sim::TimePoint;
using namespace sim::literals;

TimePoint at(std::int64_t ms) { return TimePoint::zero() + Duration::millis(ms); }

Packet make_packet(std::uint32_t bytes, FlowId flow = {}, std::uint64_t uid = 0) {
  Packet p;
  p.uid = uid;
  p.flow = flow;
  p.size_bytes = bytes;
  return p;
}

TEST(DropTailFifo, FifoOrderAndCounters) {
  DropTailFifo q(10'000);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.enqueue(make_packet(100, {}, i), at(0)));
  }
  EXPECT_EQ(q.packet_count(), 5u);
  EXPECT_EQ(q.byte_count(), 500);
  for (std::uint64_t i = 0; i < 5; ++i) {
    auto p = q.dequeue(at(1));
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->uid, i);
  }
  EXPECT_FALSE(q.dequeue(at(2)).has_value());
  EXPECT_EQ(q.byte_count(), 0);
}

TEST(DropTailFifo, TailDropOnByteLimit) {
  DropTailFifo q(250);
  EXPECT_TRUE(q.enqueue(make_packet(100), at(0)));
  EXPECT_TRUE(q.enqueue(make_packet(100), at(0)));
  EXPECT_FALSE(q.enqueue(make_packet(100), at(0)));
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.packet_count(), 2u);
}

TEST(DropTailFifo, UnboundedWhenNegativeLimit) {
  DropTailFifo q(-1);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(q.enqueue(make_packet(1500), at(0)));
  EXPECT_EQ(q.drops(), 0u);
}

TEST(DropTailFifo, HeadSinceTracksHeadArrival) {
  DropTailFifo q(-1);
  EXPECT_FALSE(q.head_since().has_value());
  q.enqueue(make_packet(100), at(5));
  EXPECT_EQ(*q.head_since(), at(5));
  q.enqueue(make_packet(100), at(6));
  EXPECT_EQ(*q.head_since(), at(5));  // head unchanged
  (void)q.dequeue(at(10));
  EXPECT_EQ(*q.head_since(), at(10));  // second packet became head at t=10
  (void)q.dequeue(at(11));
  EXPECT_FALSE(q.head_since().has_value());
}

TEST(DropTailFifo, PeekMatchesDequeue) {
  DropTailFifo q(-1);
  q.enqueue(make_packet(100, {}, 7), at(0));
  ASSERT_NE(q.peek(), nullptr);
  EXPECT_EQ(q.peek()->uid, 7u);
  EXPECT_EQ(q.dequeue(at(1))->uid, 7u);
  EXPECT_EQ(q.peek(), nullptr);
}

TEST(CoDel, NoDropsBelowTarget) {
  CoDel q;
  for (int t = 0; t < 100; ++t) {
    q.enqueue(make_packet(1000), at(t));
    auto p = q.dequeue(at(t + 1));  // 1 ms sojourn < 5 ms target
    EXPECT_TRUE(p.has_value());
  }
  EXPECT_EQ(q.drops(), 0u);
}

TEST(CoDel, DropsUnderSustainedHighSojourn) {
  CoDel q;
  // Keep a standing queue: enqueue faster than we dequeue, with sojourn
  // far above target for longer than interval.
  std::uint64_t delivered = 0;
  int t = 0;
  for (; t < 50; ++t) q.enqueue(make_packet(1000), at(t));
  for (; t < 1000; t += 10) {
    q.enqueue(make_packet(1000), at(t));
    if (q.dequeue(at(t)).has_value()) ++delivered;
  }
  EXPECT_GT(q.drops(), 0u);
  EXPECT_GT(delivered, 0u);
}

TEST(CoDel, RecoversAfterQueueDrains) {
  CoDel q;
  int t = 0;
  for (; t < 50; ++t) q.enqueue(make_packet(1000), at(t));
  while (q.dequeue(at(t)).has_value()) t += 200;  // force dropping state
  const auto drops_before = q.drops();
  // Now a fresh, fast-drained load: no more drops.
  for (int i = 0; i < 50; ++i) {
    q.enqueue(make_packet(1000), at(t + i * 10));
    EXPECT_TRUE(q.dequeue(at(t + i * 10 + 1)).has_value());
  }
  EXPECT_EQ(q.drops(), drops_before);
}

TEST(CoDel, TailDropBackstop) {
  CoDelConfig cfg;
  cfg.limit_bytes = 2500;
  CoDel q(cfg);
  EXPECT_TRUE(q.enqueue(make_packet(1000), at(0)));
  EXPECT_TRUE(q.enqueue(make_packet(1000), at(0)));
  EXPECT_FALSE(q.enqueue(make_packet(1000), at(0)));
}

FlowId flow_a() { return FlowId{1, 2, 10, 20, 6}; }
FlowId flow_b() { return FlowId{3, 4, 30, 40, 6}; }

TEST(FqCoDel, SeparatesFlows) {
  FqCoDel q;
  q.enqueue(make_packet(1000, flow_a(), 1), at(0));
  q.enqueue(make_packet(1000, flow_b(), 2), at(0));
  q.enqueue(make_packet(1000, flow_a(), 3), at(0));
  EXPECT_EQ(q.flow_count(), 2u);
  EXPECT_EQ(q.byte_count_flow(flow_a()), 2000);
  EXPECT_EQ(q.byte_count_flow(flow_b()), 1000);
  EXPECT_EQ(q.byte_count(), 3000);
}

TEST(FqCoDel, DrrInterleavesFlows) {
  FqCoDel q;
  for (std::uint64_t i = 0; i < 4; ++i) q.enqueue(make_packet(1000, flow_a(), i), at(0));
  for (std::uint64_t i = 0; i < 4; ++i) {
    q.enqueue(make_packet(1000, flow_b(), 100 + i), at(0));
  }
  std::vector<std::uint64_t> order;
  while (auto p = q.dequeue(at(1))) order.push_back(p->uid);
  ASSERT_EQ(order.size(), 8u);
  // Both flows must appear within the first three dequeues (fair service,
  // quantum 1514 covers one packet per round).
  const bool a_early = order[0] < 100 || order[1] < 100 || order[2] < 100;
  const bool b_early = order[0] >= 100 || order[1] >= 100 || order[2] >= 100;
  EXPECT_TRUE(a_early);
  EXPECT_TRUE(b_early);
}

TEST(FqCoDel, ApproximatesFairShares) {
  FqCoDel q;
  // Flow A offers 3x the bytes of flow B; with both backlogged the service
  // should be ~50/50 until B runs dry.
  for (std::uint64_t i = 0; i < 30; ++i) q.enqueue(make_packet(1000, flow_a(), i), at(0));
  for (std::uint64_t i = 0; i < 10; ++i) {
    q.enqueue(make_packet(1000, flow_b(), 100 + i), at(0));
  }
  int a_in_first_20 = 0;
  for (int i = 0; i < 20; ++i) {
    auto p = q.dequeue(at(1));
    ASSERT_TRUE(p.has_value());
    if (p->uid < 100) ++a_in_first_20;
  }
  EXPECT_GE(a_in_first_20, 8);
  EXPECT_LE(a_in_first_20, 12);
}

TEST(FqCoDel, PerFlowHeadSince) {
  FqCoDel q;
  q.enqueue(make_packet(1000, flow_a()), at(5));
  q.enqueue(make_packet(1000, flow_b()), at(7));
  EXPECT_EQ(*q.head_since_flow(flow_a()), at(5));
  EXPECT_EQ(*q.head_since_flow(flow_b()), at(7));
  EXPECT_FALSE(q.head_since_flow(FlowId{9, 9, 9, 9, 6}).has_value());
}

TEST(FqCoDel, TotalLimitDrops) {
  FqCoDel::Config cfg;
  cfg.total_limit_bytes = 2500;
  FqCoDel q(cfg);
  EXPECT_TRUE(q.enqueue(make_packet(1000, flow_a()), at(0)));
  EXPECT_TRUE(q.enqueue(make_packet(1000, flow_b()), at(0)));
  EXPECT_FALSE(q.enqueue(make_packet(1000, flow_a()), at(0)));
  EXPECT_EQ(q.drops(), 1u);
}

// ---------------------------------------------------------------------------
// Property test: under random interleavings of enqueue/dequeue, byte and
// packet accounting stays consistent and nothing is lost or duplicated.
// ---------------------------------------------------------------------------

class QdiscPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(QdiscPropertyTest, ConservationUnderRandomOps) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<std::unique_ptr<Qdisc>> qdiscs;
  qdiscs.push_back(std::make_unique<DropTailFifo>(100'000));
  qdiscs.push_back(std::make_unique<CoDel>());
  qdiscs.push_back(std::make_unique<FqCoDel>());

  for (auto& q : qdiscs) {
    std::uint64_t enqueued = 0, dequeued = 0;
    std::int64_t t = 0;
    for (int op = 0; op < 2000; ++op) {
      t += static_cast<std::int64_t>(rng.uniform_int(3));
      if (rng.chance(0.6)) {
        FlowId f{rng.uniform_int(3), 1, 1, 1, 6};
        if (q->enqueue(make_packet(100 + rng.uniform_int(1400), f), at(t))) {
          ++enqueued;
        }
      } else if (q->dequeue(at(t)).has_value()) {
        ++dequeued;
      }
      ASSERT_GE(q->byte_count(), 0);
    }
    // Drain completely; accounting must balance (CoDel may have dropped
    // at dequeue time, which shows up in drops()).
    while (q->dequeue(at(t + 1'000'000)).has_value()) ++dequeued;
    EXPECT_EQ(q->byte_count(), 0);
    EXPECT_EQ(q->packet_count(), 0u);
    // Every accepted packet either came out or was head-dropped by the
    // AQM; head drops are a subset of the drops() counter (which also
    // includes tail drops that were never counted as accepted).
    EXPECT_GE(enqueued, dequeued);
    EXPECT_LE(enqueued - dequeued, q->drops())
        << "enqueued=" << enqueued << " dequeued=" << dequeued
        << " drops=" << q->drops();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QdiscPropertyTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace zhuge::queue
